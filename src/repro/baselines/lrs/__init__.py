"""LRS: the log-structured record-oriented baseline of §4.6."""

from repro.baselines.lrs.store import LRSCluster, make_lrs_config

__all__ = ["LRSCluster", "make_lrs_config"]
