"""LRS: log-structured record store with an LSM-tree index (§4.6).

The paper defines LRS as "a system which has a distributed architecture
and data partitioning strategy similar to RAMCloud and LogBase but stores
data on disks and indexes them with log-structured merge trees
(LSM-tree)", instantiated with LevelDB.  In this reproduction that is
*precisely* LogBase's tablet server with the index implementation swapped
from the in-memory B-link tree to :class:`~repro.index.lsm.LSMTreeIndex`
(memtable 4 MB, block cache 8 MB — the paper's "moderate write and read
buffer").  Reusing the machinery keeps the comparison honest: the only
difference benchmarks measure is the index design.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import LogBaseConfig
from repro.core.cluster import LogBaseCluster


def make_lrs_config(base: LogBaseConfig | None = None) -> LogBaseConfig:
    """A LogBase config turned into an LRS config: LSM index, no large
    in-memory index budget needed."""
    base = base if base is not None else LogBaseConfig()
    return replace(base, index_kind="lsm")


class LRSCluster(LogBaseCluster):
    """A cluster of LRS servers (LogBase architecture, LSM-tree indexes)."""

    def __init__(self, n_nodes: int = 3, config: LogBaseConfig | None = None) -> None:
        super().__init__(n_nodes, make_lrs_config(config))
