"""The paper's comparison systems, built from scratch on the same substrate.

* :mod:`repro.baselines.hbase` — a WAL+Data store modelled on HBase
  0.90.3: write-ahead log plus memtables flushed to SSTables with sparse
  block indexes and a block cache.
* :mod:`repro.baselines.lrs` — the log-structured record-oriented system
  of §4.6: LogBase's architecture and partitioning, data on disk, indexed
  with an LSM-tree (LevelDB-like) instead of in-memory B-link trees.
"""

from repro.baselines.hbase.store import HBaseRegionServer
from repro.baselines.hbase.cluster import HBaseCluster
from repro.baselines.lrs.store import LRSCluster, make_lrs_config

__all__ = ["HBaseRegionServer", "HBaseCluster", "LRSCluster", "make_lrs_config"]
