"""The HBase-style region server: WAL + memtables + SSTables (§3.6, right
half of Figure 3).

Every write is persisted to the write-ahead log *and* buffered in the
memstore of its column group; when a memstore reaches its flush size the
write path stalls while the whole memstore is written to a new SSTable in
the DFS — the double write and flush stall that Figures 6 and 11-13 hang
on.  Reads consult memstore, block cache, then SSTables newest-first, and
a minor compaction merges SSTables once a store accumulates too many.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.hbase.memtable import Memtable
from repro.baselines.hbase.sstable import SSTable, SSTableWriter
from repro.config import GiB
from repro.coordination.tso import TimestampOracle
from repro.core.tablet import Tablet, TabletId
from repro.dfs.filesystem import DFS
from repro.errors import ServerDownError, TabletNotFound
from repro.sim.machine import Machine
from repro.util.lru import LRUCache
from repro.wal.record import LogRecord, RecordType
from repro.wal.repository import LogRepository

StoreKey = tuple[str, str]  # (tablet id str, group)


@dataclass
class HBaseConfig:
    """Region-server knobs (HBase 0.90.3 defaults, §4.1 settings).

    ``memstore_flush_size`` is 64 MB in HBase; simulation runs scale it
    down with the record count so flushes still occur (the cost model
    charges true bytes either way).
    """

    heap_bytes: int = 4 * GiB
    memstore_heap_fraction: float = 0.40   # "40% of heap for memtables"
    block_cache_fraction: float = 0.20     # "20% for caching data blocks"
    memstore_flush_size: int = 64 * 1024 * 1024
    sstable_block_size: int = 64 * 1024
    compaction_threshold: int = 3          # minor compaction trigger
    segment_size: int = 64 * 1024 * 1024   # WAL segment roll size

    @property
    def block_cache_bytes(self) -> int:
        return int(self.heap_bytes * self.block_cache_fraction)


class HBaseRegionServer:
    """One region server co-located with a datanode."""

    def __init__(
        self,
        name: str,
        machine: Machine,
        dfs: DFS,
        tso: TimestampOracle,
        config: HBaseConfig | None = None,
    ) -> None:
        self.name = name
        self.machine = machine
        self.dfs = dfs
        self.tso = tso
        self.config = config if config is not None else HBaseConfig()
        self.wal = LogRepository(
            dfs, machine, f"/hbase/{name}/wal", self.config.segment_size
        )
        self.tablets: dict[str, Tablet] = {}
        self._memstores: dict[StoreKey, Memtable] = {}
        self._sstables: dict[StoreKey, list[SSTable]] = {}  # newest first
        self._flush_counter = 0
        self.block_cache: LRUCache = LRUCache(
            byte_capacity=self.config.block_cache_bytes,
            sizer=lambda block: sum(
                len(k) + (len(v) if v is not None else 0) + 16 for k, _, v in block
            ),
        )
        self.serving = True
        self.flushes = 0
        self.minor_compactions = 0

    # -- lifecycle ----------------------------------------------------------------

    def _require_serving(self) -> None:
        if not self.serving or not self.machine.alive:
            raise ServerDownError(f"region server {self.name} is down")

    def crash(self) -> None:
        """Kill the process; memstores and block cache are lost."""
        self.serving = False
        self._memstores.clear()
        self.block_cache.clear()
        self._sstables.clear()

    def restart(self) -> None:
        """Restart with empty memory; call :meth:`recover` afterwards."""
        self.wal = LogRepository.reattach(
            self.dfs, self.machine, f"/hbase/{self.name}/wal", self.config.segment_size
        )
        self.serving = True

    # -- tablets ---------------------------------------------------------------------

    def assign_tablet(self, tablet: Tablet) -> None:
        """Serve ``tablet``: open its stores (and discover SSTables)."""
        self.tablets[str(tablet.tablet_id)] = tablet
        for group in tablet.schema.group_names:
            store = (str(tablet.tablet_id), group)
            self._memstores.setdefault(store, Memtable())
            if store not in self._sstables:
                self._sstables[store] = self._discover_sstables(store)

    def _discover_sstables(self, store: StoreKey) -> list[SSTable]:
        tablet_id, group = store
        prefix = f"/hbase/{self.name}/data/{tablet_id}/{group}/"
        tables = [
            SSTable(self.dfs, path, self.machine)
            for path in self.dfs.list_files(prefix)
        ]
        tables.sort(key=lambda t: t.path, reverse=True)  # newest first
        return tables

    def _route(self, table: str, key: bytes) -> Tablet:
        for tablet in self.tablets.values():
            if tablet.table == table and tablet.covers(key):
                return tablet
        raise TabletNotFound(f"server {self.name} has no tablet for {table}:{key!r}")

    def _store(self, table: str, key: bytes, group: str) -> StoreKey:
        tablet = self._route(table, key)
        return (str(tablet.tablet_id), group)

    # -- write path: WAL append + memstore + flush stall -------------------------------

    def write(
        self,
        table: str,
        key: bytes,
        group_values: dict[str, bytes],
        *,
        timestamp: int | None = None,
        txn_id: int = 0,
    ) -> int:
        """Insert/update: log to the WAL, buffer in the memstore, and flush
        synchronously if the memstore fills — the WAL+Data double write."""
        self._require_serving()
        tablet = self._route(table, key)
        if timestamp is None:
            timestamp = self.tso.next_timestamp()
        records = [
            LogRecord(
                record_type=RecordType.WRITE,
                txn_id=txn_id,
                table=table,
                tablet=str(tablet.tablet_id),
                key=key,
                group=group,
                timestamp=timestamp,
                value=value,
            )
            for group, value in group_values.items()
        ]
        self.wal.append_batch(records)
        for group, value in group_values.items():
            store = (str(tablet.tablet_id), group)
            memstore = self._memstores[store]
            memstore.put(key, timestamp, value)
            if memstore.bytes_used >= self.config.memstore_flush_size:
                # "the write has to wait until the memtable is persisted
                # successfully into HDFS before returning" (§4.3)
                self.flush_store(store)
        return timestamp

    def write_batch(
        self,
        table: str,
        items: list[tuple[bytes, dict[str, bytes]]],
        *,
        txn_id: int = 0,
    ) -> list[int]:
        """Batched insert path (HBase's client write buffer): one WAL
        append for the batch, then memstore puts with their flush stalls."""
        self._require_serving()
        records: list[LogRecord] = []
        staged: list[tuple[StoreKey, bytes, int, bytes]] = []
        timestamps: list[int] = []
        for key, group_values in items:
            tablet = self._route(table, key)
            timestamp = self.tso.next_timestamp()
            timestamps.append(timestamp)
            for group, value in group_values.items():
                records.append(
                    LogRecord(
                        record_type=RecordType.WRITE,
                        txn_id=txn_id,
                        table=table,
                        tablet=str(tablet.tablet_id),
                        key=key,
                        group=group,
                        timestamp=timestamp,
                        value=value,
                    )
                )
                staged.append(((str(tablet.tablet_id), group), key, timestamp, value))
        self.wal.append_batch(records)
        for store, key, timestamp, value in staged:
            memstore = self._memstores[store]
            memstore.put(key, timestamp, value)
            if memstore.bytes_used >= self.config.memstore_flush_size:
                self.flush_store(store)
        return timestamps

    def flush_store(self, store: StoreKey) -> str | None:
        """Flush one memstore to a new SSTable; returns its path."""
        memstore = self._memstores[store]
        if len(memstore) == 0:
            return None
        tablet_id, group = store
        self._flush_counter += 1
        path = (
            f"/hbase/{self.name}/data/{tablet_id}/{group}/"
            f"sst-{self._flush_counter:08d}.sst"
        )
        writer = SSTableWriter(
            self.dfs, path, self.machine, self.config.sstable_block_size
        )
        for key, ts, value in memstore.sorted_entries():
            writer.add(key, ts, value)
        writer.finish()
        memstore.clear()
        self._sstables[store].insert(0, writer.open_result(self.dfs, self.machine))
        self.flushes += 1
        if len(self._sstables[store]) >= self.config.compaction_threshold:
            self.minor_compact(store)
        return path

    def flush_all(self) -> None:
        """Flush every memstore (used at the end of load phases)."""
        for store in list(self._memstores):
            self.flush_store(store)

    def trim_wal(self) -> int:
        """Discard WAL segments made obsolete by flushes (HBase's log
        cleaner): once every memstore is empty, everything in the WAL is
        also in SSTables and the old segments can go.  Returns segments
        removed.

        This is the WAL+Data steady state the paper's cost argument is
        about: the data was *written* twice either way, but only one copy
        is retained long-term.
        """
        if any(len(memstore) for memstore in self._memstores.values()):
            return 0  # unflushed entries still rely on the WAL
        old_segments = self.wal.segments()
        self.wal.roll()
        self.wal.retire_segments(old_segments)
        return len(old_segments)

    # -- read path: memstore -> block cache -> SSTables ----------------------------------

    def read(
        self, table: str, key: bytes, group: str, *, as_of: int | None = None
    ) -> tuple[int, bytes] | None:
        """Get the latest (or as-of) version of one record."""
        self._require_serving()
        store = self._store(table, key, group)
        memstore = self._memstores[store]
        hit = (
            memstore.get_latest(key) if as_of is None else memstore.get_asof(key, as_of)
        )
        if hit is not None:
            ts, value = hit
            return None if value is None else (ts, value)
        for sstable in self._sstables[store]:  # newest first
            versions = sstable.get_versions(key, self.block_cache)
            if as_of is not None:
                versions = [(ts, v) for ts, v in versions if ts <= as_of]
            if versions:
                ts, value = versions[-1]
                return None if value is None else (ts, value)
        return None

    def read_version_timestamp(self, table: str, key: bytes, group: str) -> int | None:
        """Current version timestamp (for parity with the LogBase API)."""
        result = self.read(table, key, group)
        return None if result is None else result[0]

    def delete(self, table: str, key: bytes, group: str, *, txn_id: int = 0) -> int:
        """Delete by writing a tombstone through WAL + memstore."""
        self._require_serving()
        tablet = self._route(table, key)
        timestamp = self.tso.next_timestamp()
        self.wal.append(
            LogRecord(
                record_type=RecordType.INVALIDATE,
                txn_id=txn_id,
                table=table,
                tablet=str(tablet.tablet_id),
                key=key,
                group=group,
                timestamp=timestamp,
                value=None,
            )
        )
        self._memstores[(str(tablet.tablet_id), group)].put(key, timestamp, None)
        return 1

    # -- scans ------------------------------------------------------------------------------

    def range_scan(
        self,
        table: str,
        group: str,
        start_key: bytes,
        end_key: bytes,
        *,
        as_of: int | None = None,
    ):
        """Yield (key, ts, value) for the latest visible version per key.

        SSTables are key-sorted, so this is a sequential merge — the
        strength of the WAL+Data layout (Figure 10, HBase line)."""
        self._require_serving()
        for tablet in sorted(
            (t for t in self.tablets.values() if t.table == table),
            key=lambda t: t.key_range.start,
        ):
            store = (str(tablet.tablet_id), group)
            versions: dict[bytes, tuple[int, bytes | None]] = {}
            sources = [self._memstores[store].range(start_key, end_key)]
            sources += [
                sst.range(start_key, end_key, self.block_cache)
                for sst in self._sstables[store]
            ]
            for source in sources:
                for key, ts, value in source:
                    if as_of is not None and ts > as_of:
                        continue
                    best = versions.get(key)
                    if best is None or ts > best[0]:
                        versions[key] = (ts, value)
            for key in sorted(versions):
                ts, value = versions[key]
                if value is not None:
                    yield key, ts, value

    def full_scan(self, table: str, group: str):
        """Sequential scan over data files + memstores (whole table)."""
        self._require_serving()
        yield from self.range_scan(table, group, b"", b"\xff" * 64)

    # -- compaction -----------------------------------------------------------------------------

    def minor_compact(self, store: StoreKey) -> None:
        """Merge a store's SSTables into one (read all, write one)."""
        tables = self._sstables[store]
        if len(tables) < 2:
            return
        merged: dict[tuple[bytes, int], bytes | None] = {}
        for sstable in tables:
            for key, ts, value in sstable.scan(self.block_cache):
                merged[(key, ts)] = value
        tablet_id, group = store
        self._flush_counter += 1
        path = (
            f"/hbase/{self.name}/data/{tablet_id}/{group}/"
            f"sst-{self._flush_counter:08d}.sst"
        )
        writer = SSTableWriter(
            self.dfs, path, self.machine, self.config.sstable_block_size
        )
        for key, ts in sorted(merged):
            writer.add(key, ts, merged[(key, ts)])
        writer.finish()
        for sstable in tables:
            self.dfs.delete(sstable.path)
        self._sstables[store] = [writer.open_result(self.dfs, self.machine)]
        self.minor_compactions += 1

    # -- recovery: replay the WAL into memstores ---------------------------------------------------

    def recover(self) -> int:
        """Rebuild memstores by replaying WAL entries newer than what the
        SSTables already contain; returns entries replayed.

        This is the WAL+Data recovery path the paper contrasts with
        LogBase's: the *data* must be reconstructed (memstores refilled),
        not just an index."""
        self._require_serving()
        for store in list(self._memstores):
            self._sstables[store] = self._discover_sstables(store)
        flushed_ts = {
            store: max((sst.max_ts for sst in tables), default=0)
            for store, tables in self._sstables.items()
        }
        replayed = 0
        for _, record in self.wal.scan_all():
            if record.record_type not in (RecordType.WRITE, RecordType.INVALIDATE):
                continue
            store = (record.tablet, record.group)
            if store not in self._memstores:
                continue
            if record.timestamp <= flushed_ts.get(store, 0):
                continue
            self._memstores[store].put(record.key, record.timestamp, record.value)
            replayed += 1
        return replayed

    # -- accounting ----------------------------------------------------------------------------------

    def data_bytes(self) -> int:
        """Bytes in WAL plus data files (the double-storage footprint)."""
        total = self.wal.total_bytes()
        for tables in self._sstables.values():
            for sstable in tables:
                total += self.dfs.file_length(sstable.path)
        return total
