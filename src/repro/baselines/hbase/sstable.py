"""SSTables: HBase's immutable sorted data files.

Layout::

    file    := data_block* index_block trailer
    block   := entry*                       (~64 KB, HBase default)
    entry   := key_len key timestamp value_flag [value_len value]
    index   := count (first_key_len first_key offset length)*
    trailer := index_offset(u64 LE) index_length(u32 LE)
               max_ts(u64 LE) entry_count(u64 LE) magic(4B)

The block index is *sparse*: one entry per 64 KB block, so a point read
must fetch and scan a whole block — the extra I/O LogBase's dense
in-memory index avoids (§4.2.2).  The index block itself also lives in
the file and costs a read the first time the table is opened.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.dfs.filesystem import DFS
from repro.errors import CorruptLogRecord
from repro.sim.machine import Machine
from repro.util.lru import LRUCache
from repro.util.varint import decode_uvarint, encode_uvarint

_TRAILER = struct.Struct("<QIQQ4s")
_MAGIC = b"HSST"

DEFAULT_BLOCK_SIZE = 64 * 1024

Entry = tuple[bytes, int, bytes | None]  # key, timestamp, value (None=tombstone)


def _encode_entry(key: bytes, timestamp: int, value: bytes | None) -> bytes:
    out = bytearray()
    out += encode_uvarint(len(key))
    out += key
    out += encode_uvarint(timestamp)
    if value is None:
        out.append(0)
    else:
        out.append(1)
        out += encode_uvarint(len(value))
        out += value
    return bytes(out)


def _decode_block(payload: bytes) -> list[Entry]:
    entries: list[Entry] = []
    pos = 0
    while pos < len(payload):
        n, pos = decode_uvarint(payload, pos)
        key = payload[pos : pos + n]
        pos += n
        ts, pos = decode_uvarint(payload, pos)
        flag = payload[pos]
        pos += 1
        value: bytes | None = None
        if flag:
            n, pos = decode_uvarint(payload, pos)
            value = payload[pos : pos + n]
            pos += n
        entries.append((key, ts, value))
    return entries


class SSTableWriter:
    """Streams sorted entries into a new SSTable file."""

    def __init__(
        self, dfs: DFS, path: str, machine: Machine, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> None:
        self._writer = dfs.create(path, machine)
        self._path = path
        self._block_size = block_size
        self._block = bytearray()
        self._block_first: bytes | None = None
        self._index: list[tuple[bytes, int, int]] = []
        self._offset = 0
        self._max_ts = 0
        self._count = 0

    def add(self, key: bytes, timestamp: int, value: bytes | None) -> None:
        """Append one entry; entries must arrive in (key, ts) order."""
        if self._block_first is None:
            self._block_first = key
        self._block += _encode_entry(key, timestamp, value)
        self._max_ts = max(self._max_ts, timestamp)
        self._count += 1
        if len(self._block) >= self._block_size:
            self._flush_block()

    def _flush_block(self) -> None:
        if not self._block:
            return
        payload = bytes(self._block)
        self._writer.append(payload)
        self._index.append((self._block_first or b"", self._offset, len(payload)))
        self._offset += len(payload)
        self._block = bytearray()
        self._block_first = None

    def finish(self) -> str:
        """Write the index block and trailer; returns the file path."""
        self._flush_block()
        index = bytearray()
        index += encode_uvarint(len(self._index))
        for first_key, offset, length in self._index:
            index += encode_uvarint(len(first_key))
            index += first_key
            index += encode_uvarint(offset)
            index += encode_uvarint(length)
        self._index_offset = self._offset
        self._index_length = len(index)
        self._writer.append(bytes(index))
        self._writer.append(
            _TRAILER.pack(
                self._index_offset, self._index_length, self._max_ts, self._count, _MAGIC
            )
        )
        self._writer.close()
        return self._path

    def open_result(self, dfs: DFS, machine: Machine) -> "SSTable":
        """Open the finished table reusing the writer's in-memory metadata.

        A region server that just flushed or compacted already holds the
        file's index and trailer in memory (and the bytes in page cache),
        so opening its own output charges no disk reads."""
        return SSTable(
            dfs,
            self._path,
            machine,
            preloaded=(
                list(self._index),
                self._index_offset,
                self._index_length,
                self._max_ts,
                self._count,
            ),
        )


class SSTable:
    """An open SSTable: sparse index in memory after the first load."""

    def __init__(
        self, dfs: DFS, path: str, machine: Machine, preloaded=None
    ) -> None:
        self._dfs = dfs
        self.path = path
        self._machine = machine
        self._index: list[tuple[bytes, int, int]] | None = None
        self.max_ts = 0
        self.entry_count = 0
        if preloaded is not None:
            (
                self._index,
                self._index_offset,
                self._index_length,
                self.max_ts,
                self.entry_count,
            ) = preloaded
            return
        self._load_trailer()
        # HBase loads the block index when an HFile is opened; keep that
        # behaviour (cold-read experiments evict it explicitly).
        self._block_index()

    def _load_trailer(self) -> None:
        reader = self._dfs.open(self.path, self._machine)
        trailer = reader.read(reader.length - _TRAILER.size, _TRAILER.size)
        index_offset, index_length, max_ts, count, magic = _TRAILER.unpack(trailer)
        if magic != _MAGIC:
            raise CorruptLogRecord(f"bad SSTable magic in {self.path}")
        self.max_ts = max_ts
        self.entry_count = count
        self._index_offset = index_offset
        self._index_length = index_length

    def _block_index(self) -> list[tuple[bytes, int, int]]:
        """Load the sparse block index (one extra read, then cached)."""
        if self._index is None:
            reader = self._dfs.open(self.path, self._machine)
            payload = reader.read(self._index_offset, self._index_length)
            pos = 0
            count, pos = decode_uvarint(payload, pos)
            index = []
            for _ in range(count):
                n, pos = decode_uvarint(payload, pos)
                first_key = payload[pos : pos + n]
                pos += n
                offset, pos = decode_uvarint(payload, pos)
                length, pos = decode_uvarint(payload, pos)
                index.append((first_key, offset, length))
            self._index = index
        return self._index

    def _read_block(
        self, block_no: int, cache: LRUCache | None
    ) -> list[Entry]:
        if cache is not None:
            cached = cache.get((self.path, block_no))
            if cached is not None:
                return cached
        _, offset, length = self._block_index()[block_no]
        payload = self._dfs.open(self.path, self._machine).read(offset, length)
        block = _decode_block(payload)
        if cache is not None:
            cache.put((self.path, block_no), block)
        return block

    def _blocks_for_key(self, key: bytes) -> list[int]:
        index = self._block_index()
        chosen = []
        for i, (first_key, _, _) in enumerate(index):
            next_first = index[i + 1][0] if i + 1 < len(index) else None
            if next_first is not None and next_first <= key:
                continue
            if first_key > key:
                break
            chosen.append(i)
        return chosen

    def get_versions(self, key: bytes, cache: LRUCache | None) -> list[tuple[int, bytes | None]]:
        """All versions of ``key`` in this file, as (ts, value), ascending."""
        versions = []
        for block_no in self._blocks_for_key(key):
            for entry_key, ts, value in self._read_block(block_no, cache):
                if entry_key == key:
                    versions.append((ts, value))
        versions.sort()
        return versions

    def range(
        self, start_key: bytes, end_key: bytes, cache: LRUCache | None
    ) -> Iterator[Entry]:
        """Sorted entries with start_key <= key < end_key."""
        index = self._block_index()
        for block_no, (first_key, _, _) in enumerate(index):
            next_first = index[block_no + 1][0] if block_no + 1 < len(index) else None
            if next_first is not None and next_first <= start_key:
                continue
            if first_key >= end_key:
                break
            for entry in self._read_block(block_no, cache):
                if start_key <= entry[0] < end_key:
                    yield entry

    def scan(self, cache: LRUCache | None = None) -> Iterator[Entry]:
        """Full sequential scan of the data blocks."""
        for block_no in range(len(self._block_index())):
            yield from self._read_block(block_no, cache)
