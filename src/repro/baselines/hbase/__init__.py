"""HBase-style WAL+Data baseline (§2.2, §4).

Every write goes to the write-ahead log *and* (via the memtable) to a
data file — the double write LogBase eliminates.  Reads hit the memtable,
then the block cache, then SSTables: a sparse block index narrows the
search to a 64 KB block which must be fetched and scanned, the extra I/O
behind Figure 7.
"""

from repro.baselines.hbase.memtable import Memtable
from repro.baselines.hbase.sstable import SSTable, SSTableWriter
from repro.baselines.hbase.store import HBaseConfig, HBaseRegionServer
from repro.baselines.hbase.cluster import HBaseCluster

__all__ = [
    "Memtable",
    "SSTable",
    "SSTableWriter",
    "HBaseConfig",
    "HBaseRegionServer",
    "HBaseCluster",
]
