"""The memtable (memstore): HBase's in-memory write buffer.

Unlike LogBase's read cache, the memtable *stores data*: it holds every
recent write and must be flushed to an SSTable in the DFS when full —
"which incurs write bottlenecks in write-intensive applications"
(§3.6.1).  Entries are multiversion: (key, timestamp) -> value, value
None being a delete tombstone.
"""

from __future__ import annotations

from typing import Iterator

Composite = tuple[bytes, int]


class Memtable:
    """Sorted multiversion in-memory buffer for one (tablet, group)."""

    def __init__(self) -> None:
        self._data: dict[Composite, bytes | None] = {}
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._data)

    @property
    def bytes_used(self) -> int:
        """Payload bytes buffered (what counts against the flush size)."""
        return self._bytes

    def put(self, key: bytes, timestamp: int, value: bytes | None) -> None:
        """Buffer one version (None value = delete tombstone)."""
        composite = (key, timestamp)
        old = self._data.get(composite)
        if old is not None:
            self._bytes -= len(key) + len(old) + 16
        self._data[composite] = value
        self._bytes += len(key) + (len(value) if value is not None else 0) + 16

    def get_latest(self, key: bytes) -> tuple[int, bytes | None] | None:
        """Newest buffered version of ``key`` as (timestamp, value)."""
        best: tuple[int, bytes | None] | None = None
        for (entry_key, ts), value in self._data.items():
            if entry_key == key and (best is None or ts > best[0]):
                best = (ts, value)
        return best

    def get_asof(self, key: bytes, timestamp: int) -> tuple[int, bytes | None] | None:
        """Newest buffered version at/before ``timestamp``."""
        best: tuple[int, bytes | None] | None = None
        for (entry_key, ts), value in self._data.items():
            if entry_key == key and ts <= timestamp and (best is None or ts > best[0]):
                best = (ts, value)
        return best

    def sorted_entries(self) -> Iterator[tuple[bytes, int, bytes | None]]:
        """All versions in (key, timestamp) order — the flush order that
        keeps SSTables sorted and range scans fast."""
        for key, ts in sorted(self._data):
            yield key, ts, self._data[(key, ts)]

    def range(
        self, start_key: bytes, end_key: bytes
    ) -> Iterator[tuple[bytes, int, bytes | None]]:
        """Sorted versions with start_key <= key < end_key."""
        for key, ts, value in self.sorted_entries():
            if key >= end_key:
                return
            if key >= start_key:
                yield key, ts, value

    def clear(self) -> None:
        """Empty the buffer (after a successful flush)."""
        self._data.clear()
        self._bytes = 0
