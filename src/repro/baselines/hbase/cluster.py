"""HBase cluster assembly, mirroring :class:`~repro.core.cluster.LogBaseCluster`.

Same machines, same shared DFS, same coordination service and timestamp
oracle — only the region-server storage engine differs, so cluster-level
comparisons isolate exactly the WAL+Data vs. log-only design choice.
"""

from __future__ import annotations

from repro.baselines.hbase.store import HBaseConfig, HBaseRegionServer
from repro.config import LogBaseConfig
from repro.coordination.tso import TimestampOracle
from repro.coordination.znodes import CoordinationService
from repro.core.partition import split_key_domain
from repro.core.schema import TableSchema
from repro.core.tablet import Tablet, TabletId
from repro.dfs.filesystem import DFS
from repro.errors import TableNotFound, TabletNotFound
from repro.sim.clock import makespan
from repro.sim.machine import Machine


class HBaseCluster:
    """A simulated HBase deployment on the shared substrate."""

    def __init__(
        self,
        n_nodes: int = 3,
        config: HBaseConfig | None = None,
        base: LogBaseConfig | None = None,
    ) -> None:
        self.config = config if config is not None else HBaseConfig()
        base = base if base is not None else LogBaseConfig()
        self.machines = [
            Machine(
                f"node-{i}",
                rack=f"rack-{i % base.racks}",
                disk_model=base.disk,
                network=base.network,
            )
            for i in range(n_nodes)
        ]
        self.dfs = DFS(
            self.machines, replication=base.replication, block_size=base.dfs_block_size
        )
        self.coordination = CoordinationService()
        self.tso = TimestampOracle(self.coordination)
        self.servers = [
            HBaseRegionServer(
                f"rs-{machine.name}", machine, self.dfs, self.tso, self.config
            )
            for machine in self.machines
        ]
        self._tables: dict[str, TableSchema] = {}
        self._tablets: dict[str, list[Tablet]] = {}
        self._assignments: dict[str, HBaseRegionServer] = {}

    def create_table(
        self,
        schema: TableSchema,
        *,
        tablets_per_server: int = 1,
        key_domain: int = 2_000_000_000,
        key_width: int = 12,
        only_servers: list[str] | None = None,
    ) -> list[Tablet]:
        """Create a range-partitioned table, tablets assigned round-robin.

        Args:
            only_servers: restrict hosting to these server names.
        """
        servers = self.servers
        if only_servers is not None:
            servers = [s for s in servers if s.name in only_servers]
        n_tablets = max(1, len(servers) * tablets_per_server)
        ranges = split_key_domain(key_domain, n_tablets, key_width)
        tablets = [
            Tablet(TabletId(schema.name, i), key_range, schema)
            for i, key_range in enumerate(ranges)
        ]
        self._tables[schema.name] = schema
        self._tablets[schema.name] = tablets
        for i, tablet in enumerate(tablets):
            server = servers[i % len(servers)]
            server.assign_tablet(tablet)
            self._assignments[str(tablet.tablet_id)] = server
        return tablets

    def schema(self, table: str) -> TableSchema:
        """Schema of ``table``."""
        if table not in self._tables:
            raise TableNotFound(table)
        return self._tables[table]

    def server_for(self, table: str, key: bytes) -> HBaseRegionServer:
        """Region server holding ``key``."""
        for tablet in self._tablets.get(table, []):
            if tablet.covers(key):
                return self._assignments[str(tablet.tablet_id)]
        raise TabletNotFound(f"{table}:{key!r}")

    # -- convenience ops used by benchmarks --------------------------------------------

    def put_raw(self, table: str, key: bytes, group: str, value: bytes) -> int:
        """Write one opaque group payload to the owning server."""
        return self.server_for(table, key).write(table, key, {group: value})

    def get_raw(
        self, table: str, key: bytes, group: str, *, as_of: int | None = None
    ) -> bytes | None:
        """Read one opaque group payload."""
        result = self.server_for(table, key).read(table, key, group, as_of=as_of)
        return None if result is None else result[1]

    def flush_all(self) -> None:
        """Flush every memstore on every server."""
        for server in self.servers:
            server.flush_all()

    def elapsed_makespan(self) -> float:
        """Max simulated clock across machines."""
        return makespan([machine.clock for machine in self.machines])

    def reset_clocks(self) -> None:
        """Zero every machine clock."""
        for machine in self.machines:
            machine.clock.reset()
            machine.disk.invalidate_head()
