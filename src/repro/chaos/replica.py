"""Replica chaos: bounded-staleness reads must stay bounded under faults.

Read replicas add a new class of lies a database can tell: a follower
serving data *newer than it has durably applied* (phantom reads from a
torn tail), serving *older data than its staleness bound promises*, or —
the replication twin of the split-brain — applying a deposed owner's
post-fence log records after ownership moved.  Each scenario here drives
a seeded workload into one of those windows and verifies the

* **durability oracle** — every acked write is readable through the
  replica-routed client (follower first, owner fallback), never shadowed;
* **staleness invariant** — a successful follower read returns exactly
  the latest version at or below that follower's watermark: never data
  newer than the watermark, and — because the serving gate bounds
  ``now - caught_up_at`` — never data older than ``watermark -
  max_staleness`` without raising ``FollowerLaggingError`` instead; and
* **fencing** — after a live migration flips ownership, no server keeps
  a replica fed from the deposed owner's log.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.chaos.migration import check_single_owner
from repro.chaos.oracle import DurabilityOracle, WriteStatus, encode_value
from repro.chaos.runner import GROUP, KEY_DOMAIN, KEY_WIDTH, SCHEMA, TABLE
from repro.config import LogBaseConfig
from repro.core.database import LogBase
from repro.errors import FollowerLaggingError, LogBaseError

SOURCE = "ts-node-0"
TARGET = "ts-node-1"


@dataclass
class ReplicaChaosReport:
    """Outcome of one replica chaos run."""

    scenario: str
    seed: int
    ops: int
    acked: int = 0
    followers_placed: int = 0
    follower_reads_ok: int = 0
    lag_rejections: int = 0
    keys_checked: int = 0
    staleness_violations: list[str] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    # Monitoring-plane artifacts (monitoring=True runs; empty otherwise).
    alerts: list = field(default_factory=list)
    postmortems: list = field(default_factory=list)
    fault_times: list = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether the run upheld durability, fencing, and staleness."""
        return not self.violations and not self.staleness_violations

    def fired_alert_names(self) -> set[str]:
        """Alert names that fired at least once during the run."""
        return {a["alert"] for a in self.alerts if a["state"] == "firing"}

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "ops": self.ops,
            "acked": self.acked,
            "followers_placed": self.followers_placed,
            "follower_reads_ok": self.follower_reads_ok,
            "lag_rejections": self.lag_rejections,
            "keys_checked": self.keys_checked,
            "staleness_violations": self.staleness_violations,
            "violations": self.violations,
            "passed": self.passed,
            "alerts": self.alerts,
            "fault_times": self.fault_times,
            "postmortems": [
                {"reason": pm["reason"], "time": pm["time"]}
                for pm in self.postmortems
            ],
        }


class StalenessChecker:
    """Tracks every key's version history (timestamp, sequence) and checks
    follower reads against the staleness invariant.

    The owner acks each write with its version timestamp, so the checker
    knows the full history.  A follower read that *succeeds* must return
    the newest version at or below the follower's watermark — anything
    newer means the follower invented data it has not applied; anything
    older means it silently served beyond its bound instead of raising
    ``FollowerLaggingError``.
    """

    def __init__(self) -> None:
        self._history: dict[bytes, list[tuple[int, int]]] = {}

    def record(self, key: bytes, timestamp: int, seq: int) -> None:
        self._history.setdefault(key, []).append((timestamp, seq))

    def check(
        self,
        key: bytes,
        watermark: int,
        result: tuple[int, bytes] | None,
    ) -> str | None:
        """Check one successful follower read; None if it upheld the
        invariant."""
        visible = [
            (ts, seq)
            for ts, seq in self._history.get(key, [])
            if ts <= watermark
        ]
        if result is None:
            if visible:
                ts, seq = max(visible)
                return (
                    f"{key!r}: follower returned absent but s{seq:08d}@{ts} "
                    f"is within its watermark {watermark}"
                )
            return None
        ts, value = result
        if ts > watermark:
            return (
                f"{key!r}: follower returned version {ts} newer than its "
                f"watermark {watermark}"
            )
        if not visible:
            return (
                f"{key!r}: follower returned version {ts} but no write is "
                f"within watermark {watermark}"
            )
        want_ts, want_seq = max(visible)
        if ts != want_ts or value != encode_value(want_seq):
            return (
                f"{key!r}: follower served {value!r}@{ts}, expected "
                f"s{want_seq:08d}@{want_ts} (latest within watermark "
                f"{watermark})"
            )
        return None


def _seeded_cluster(
    seed: int, ops: int, n_nodes: int, *, monitoring: bool = False
) -> tuple[LogBase, DurabilityOracle, StalenessChecker, list[bytes], str]:
    """A read-replica cluster with every tablet on the source, ``ops``
    acked writes recorded in the oracle and version history, and the
    followers placed and caught up.  Returns the tablet id the scenarios
    will target (the one covering the most written keys)."""
    config = LogBaseConfig.with_read_replicas(
        segment_size=64 * 1024,
        monitoring=monitoring,
        monitor_scrape_interval=0.0,  # chaos detection: scrape every beat
    )
    db = LogBase(n_nodes=n_nodes, config=config)
    db.create_table(SCHEMA, tablets_per_server=2, only_servers=[SOURCE])
    oracle = DurabilityOracle()
    checker = StalenessChecker()
    rng = random.Random(seed)
    keys = [
        str(v).zfill(KEY_WIDTH).encode()
        for v in rng.sample(range(KEY_DOMAIN), ops)
    ]
    client = db.client(db.cluster.machines[-1])
    for key in keys:
        seq, value = oracle.next_value()
        timestamp = client.put_raw(TABLE, key, GROUP, value)
        oracle.record(key, seq, WriteStatus.ACKED)
        checker.record(key, timestamp, seq)
    # First heartbeat places the followers and runs their first tail
    # pass; the second proves a steady-state pass keeps them caught up.
    db.cluster.heartbeat()
    db.cluster.heartbeat()
    counts: dict[str, int] = {}
    for key in keys:
        tablet_id = _covering_tablet(db, key)
        counts[tablet_id] = counts.get(tablet_id, 0) + 1
    victim = max(counts, key=counts.get)
    return db, oracle, checker, keys, victim


def _covering_tablet(db: LogBase, key: bytes) -> str:
    for tablet_id in db.cluster.master.catalog.assignments:
        tablet = db.cluster.master._tablet_by_id(tablet_id)
        if tablet.table == TABLE and tablet.covers(key):
            return tablet_id
    raise KeyError(key)


def _follower_servers(db: LogBase, tablet_id: str):
    """The live servers currently hosting a replica of ``tablet_id``."""
    names = db.cluster.master.catalog.followers.get(tablet_id, [])
    return [db.cluster.server_by_name(name) for name in names]


def _write_more(
    db: LogBase,
    oracle: DurabilityOracle,
    checker: StalenessChecker,
    keys: list[bytes],
) -> None:
    """More acked writes (no heartbeats, so followers fall behind)."""
    client = db.client(db.cluster.machines[-1])
    for key in keys:
        seq, value = oracle.next_value()
        try:
            timestamp = client.put_raw(TABLE, key, GROUP, value)
        except LogBaseError:
            oracle.record(key, seq, WriteStatus.INDETERMINATE)
            continue
        oracle.record(key, seq, WriteStatus.ACKED)
        checker.record(key, timestamp, seq)


def _probe_followers(
    db: LogBase,
    checker: StalenessChecker,
    keys: list[bytes],
    report: ReplicaChaosReport,
) -> None:
    """Direct follower reads for every key against every hosting replica,
    checked against the staleness invariant.  A lag rejection is a valid
    outcome (the client would fall back to the owner); a *successful*
    read must be exactly the latest version within the watermark."""
    for key in keys:
        tablet_id = _covering_tablet(db, key)
        for server in _follower_servers(db, tablet_id):
            if not server.machine.alive or not server.serving:
                continue
            follower = server.followers.get(tablet_id)
            if follower is None:
                report.violations.append(
                    f"placement: catalog lists {server.name} as a follower "
                    f"of {tablet_id} but it hosts no replica"
                )
                continue
            try:
                result = server.follower_read(TABLE, key, GROUP)
            except FollowerLaggingError:
                report.lag_rejections += 1
                continue
            problem = checker.check(key, follower.watermark, result)
            if problem is not None:
                report.staleness_violations.append(problem)
            else:
                report.follower_reads_ok += 1


def _verify(
    db: LogBase,
    oracle: DurabilityOracle,
    checker: StalenessChecker,
    keys: list[bytes],
    report: ReplicaChaosReport,
) -> None:
    """Settle heartbeats, then check every contract at once: single
    ownership, durability through the replica-routed client, and the
    staleness invariant on every follower."""
    for _ in range(2):
        db.cluster.heartbeat()
    report.violations.extend(check_single_owner(db))
    verifier = db.client(db.cluster.machines[-1])
    report.violations.extend(
        oracle.verify(lambda key: verifier.get_raw(TABLE, key, GROUP))
    )
    _probe_followers(db, checker, keys, report)
    report.acked = oracle.counts()["acked"]
    report.keys_checked = len(oracle.keys)
    report.followers_placed = sum(
        len(names) for names in db.cluster.master.catalog.followers.values()
    )


def _stale_follower_reads(
    db: LogBase,
    oracle: DurabilityOracle,
    checker: StalenessChecker,
    keys: list[bytes],
    tablet_id: str,
    report: ReplicaChaosReport,
) -> None:
    """Writes race ahead of the tail: the follower must reject, not lie.

    With no heartbeat ticking, the follower's watermark freezes while the
    owner keeps committing.  A direct read under a tight bound must raise
    ``FollowerLaggingError`` — and the replica-routed client must still
    return the latest acked value via owner fallback.  Once heartbeats
    resume, the same replica serves again, caught up.
    """
    _write_more(db, oracle, checker, keys[: len(keys) // 2])
    followers = _follower_servers(db, tablet_id)
    if not followers:
        report.violations.append(
            f"placement: no follower placed for {tablet_id}"
        )
        return
    stale = followers[0]
    # Let simulated time pass on the follower without a tail pass so it
    # is beyond both the per-request bound below and the config default
    # (the client's replica routing must reject it too, not serve stale).
    stale.machine.clock.advance(
        db.cluster.config.replica_max_staleness + 1.0
    )
    monitor = db.cluster.monitor
    if monitor is not None:
        # The heartbeat's tail pass would catch the follower back up
        # before the end-of-heartbeat scrape could see it, so this
        # scenario scrapes directly: the monitoring plane must witness
        # the lag while it exists, exactly as a scrape racing the next
        # tail pass would in production.
        monitor.note_fault(
            "stale-follower", {"node": stale.name, "tablet": tablet_id}
        )
        monitor.tick(force=True)
    probe = next(k for k in keys if _covering_tablet(db, k) == tablet_id)
    try:
        result = stale.follower_read(TABLE, probe, GROUP, max_staleness=0.5)
    except FollowerLaggingError:
        report.lag_rejections += 1
    else:
        report.staleness_violations.append(
            f"{probe!r}: follower {stale.name} served {result!r} while "
            f"stale beyond a 0.5s bound"
        )
    # The client's replica routing hides the lag: owner fallback still
    # returns the latest acked value.
    client = db.client(db.cluster.machines[-1])
    problem = oracle.check_read(probe, client.get_raw(TABLE, probe, GROUP))
    if problem is not None:
        report.violations.append(f"mid-run: {problem}")


def _follower_crash_catchup(
    db: LogBase,
    oracle: DurabilityOracle,
    checker: StalenessChecker,
    keys: list[bytes],
    tablet_id: str,
    report: ReplicaChaosReport,
) -> None:
    """A follower node dies; reads survive, and the replica comes back.

    Losing a follower must cost nothing but capacity: writes keep acking
    through the owner, the heartbeat re-places the replica on a live
    server, and the restarted node — whose replica state died with its
    memory — re-follows from the log start and catches all the way up.
    """
    followers = _follower_servers(db, tablet_id)
    if not followers:
        report.violations.append(
            f"placement: no follower placed for {tablet_id}"
        )
        return
    victim = followers[0].name
    db.cluster.kill_node(victim)
    _write_more(db, oracle, checker, keys[: len(keys) // 2])
    # Re-placement: the dead node drops out of the candidate set.
    db.cluster.heartbeat()
    replaced = db.cluster.master.catalog.followers.get(tablet_id, [])
    if victim in replaced:
        report.violations.append(
            f"placement: dead node {victim} still listed as a follower "
            f"of {tablet_id}"
        )
    db.cluster.restart_server(victim)


def _fencing_on_migration(
    db: LogBase,
    oracle: DurabilityOracle,
    checker: StalenessChecker,
    keys: list[bytes],
    tablet_id: str,
    report: ReplicaChaosReport,
) -> None:
    """Ownership moves; no replica may keep applying the deposed owner.

    The migration flip bumps the tablet's fence epoch and must tear every
    replica down *inside* the handoff — a follower that kept tailing the
    old owner's log would apply records the fence already rejected.  The
    heartbeat then re-places replicas against the new owner, and a client
    holding cached follower routes re-resolves on the first
    ``TabletMigratingError`` instead of spinning on a torn-down replica.
    """
    client = db.client(db.cluster.machines[-1])
    probe = next(k for k in keys if _covering_tablet(db, k) == tablet_id)
    client.get_raw(TABLE, probe, GROUP)  # warm the follower-route cache
    db.cluster.migrate_tablet(tablet_id, TARGET)
    # Fencing: inside the flip, every replica of the moved tablet was
    # torn down — none may still be fed from the deposed owner's log.
    for server in db.cluster.servers:
        follower = server.followers.get(tablet_id)
        if follower is not None:
            report.violations.append(
                f"fencing: {server.name} still hosts a replica of "
                f"{tablet_id} fed by {follower.owner_name} after the flip"
            )
    _write_more(db, oracle, checker, keys[: len(keys) // 2])
    # The warmed client must converge on the new topology, not error out
    # against the torn-down follower it had cached.
    problem = oracle.check_read(probe, client.get_raw(TABLE, probe, GROUP))
    if problem is not None:
        report.violations.append(f"mid-run: {problem}")
    # Re-placement points the new replicas at the new owner.
    db.cluster.heartbeat()
    for server in _follower_servers(db, tablet_id):
        follower = server.followers.get(tablet_id)
        if follower is not None and follower.owner_name != TARGET:
            report.violations.append(
                f"fencing: re-placed replica on {server.name} follows "
                f"{follower.owner_name}, not the new owner {TARGET}"
            )


REPLICA_SCENARIOS = {
    "stale-follower-reads": _stale_follower_reads,
    "follower-crash-catchup": _follower_crash_catchup,
    "fencing-on-migration": _fencing_on_migration,
}


def run_replica_chaos(
    scenario: str,
    *,
    seed: int = 1,
    ops: int = 40,
    n_nodes: int = 4,
    monitoring: bool = False,
) -> ReplicaChaosReport:
    """Run one seeded replica chaos schedule; returns the verified report.

    With ``monitoring`` the cluster carries the monitoring plane and the
    report gains the alert log, post-mortem bundles, and fault times.

    Raises:
        KeyError: for an unknown scenario name.
        ValueError: if the cluster is too small for the topology.
    """
    runner = REPLICA_SCENARIOS[scenario]
    if n_nodes < 3:
        raise ValueError("replica chaos topology needs >= 3 nodes")
    db, oracle, checker, keys, tablet_id = _seeded_cluster(
        seed, ops, n_nodes, monitoring=monitoring
    )
    report = ReplicaChaosReport(scenario=scenario, seed=seed, ops=ops)
    runner(db, oracle, checker, keys, tablet_id, report)
    _verify(db, oracle, checker, keys, report)
    monitor = db.cluster.monitor
    if monitor is not None:
        report.alerts = monitor.alert_log()
        report.postmortems = monitor.postmortem_dicts()
        report.fault_times = monitor.fault_times()
        monitor.close()
    return report
