"""The detection oracle: every seeded fault must page, clean runs must not.

The chaos families prove the *database* survives its faults; this module
proves the *monitoring plane* notices them.  For every seeded fault
schedule across the gray, migration, recovery, and replica families it
runs the monitored arm and asserts three things:

* the **matching alert** for the fault class actually fired
  (:data:`EXPECTED_ALERTS` — a dead server pages ``server-down``, a
  limping disk trips ``breaker-open``, a degraded replication link burns
  the put SLO, ...);
* it fired within the family's **detection budget** in simulated seconds
  (:data:`DETECTION_BUDGETS`), measured from the first observed fault to
  the first matching firing; and
* the **clean twin** — the same seeded cluster, same config (including
  each gray schedule's overrides), no fault — raises *zero* alerts, so
  every rule earns its keep without crying wolf.

``replica/fencing-on-migration`` is deliberately absent from the matrix:
it injects no fault (the migration it runs is sanctioned), so there is
nothing for the plane to detect — it verifies the fencing invariant and
its clean twin covers the false-positive side here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos.gray import (
    GRAY_SCHEDULES,
    GRAY_SLO_BURN_THRESHOLD,
    GRAY_SLO_TARGETS,
    GraySchedule,
    run_gray,
)
from repro.chaos.migration import run_migration_chaos
from repro.chaos.recovery import run_recovery_chaos
from repro.chaos.replica import run_replica_chaos
from repro.chaos.runner import run_chaos
from repro.config import LogBaseConfig

#: (family, scenario) -> the alert that must fire when the fault lands.
EXPECTED_ALERTS: dict[tuple[str, str], str] = {
    ("gray", "limp-datanode-mid-scan"): "breaker-open",
    ("gray", "slow-link-replication"): "slo-burn-op.put",
    ("gray", "overload-burst"): "traffic-burst",
    ("gray", "limp-trip-recover"): "breaker-open",
    ("gray", "hedge-under-limp"): "hedge-storm",
    ("migration", "crash-source-mid-catchup"): "server-down",
    ("migration", "crash-target-mid-flip"): "server-down",
    ("migration", "master-failover-mid-migration"): "server-down",
    ("migration", "partition-old-owner"): "lease-fence-rejects",
    ("recovery", "crash-during-recovery"): "server-down",
    ("recovery", "crash-during-split"): "server-down",
    ("recovery", "crash-during-adoption"): "server-down",
    ("replica", "stale-follower-reads"): "replica-lag-high",
    ("replica", "follower-crash-catchup"): "server-down",
}

#: per-family detection budget (simulated seconds from first fault to
#: first matching firing).  Observed latencies at the pinned seed sit at
#: less than half of each bound: kills are seen at the next heartbeat
#: (tens of milliseconds of simulated time), SLO burn needs enough
#: window samples to cross the burn threshold (~0.65s for the degraded
#: link), lease-fence rejection waits out the ownership lease (~0.52s).
DETECTION_BUDGETS: dict[str, float] = {
    "gray": 1.5,
    "migration": 1.0,
    "recovery": 0.5,
    "replica": 0.5,
}


@dataclass
class DetectionResult:
    """One (family, scenario) verdict from the oracle."""

    family: str
    scenario: str
    expected_alert: str
    budget: float
    run_passed: bool = False  # the underlying chaos contract held
    fired: list[str] = field(default_factory=list)
    fault_times: list[float] = field(default_factory=list)
    detection_latency: float | None = None
    clean_alerts: list[dict] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        """The expected alert fired within budget, from a fault the
        monitor actually observed."""
        return (
            self.detection_latency is not None
            and self.detection_latency <= self.budget
        )

    @property
    def passed(self) -> bool:
        return self.run_passed and self.detected and not self.clean_alerts

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "scenario": self.scenario,
            "expected_alert": self.expected_alert,
            "budget": self.budget,
            "run_passed": self.run_passed,
            "fired": self.fired,
            "fault_times": self.fault_times,
            "detection_latency": self.detection_latency,
            "detected": self.detected,
            "clean_alerts": self.clean_alerts,
            "passed": self.passed,
        }


def detection_latency_from_report(report, alert_name: str) -> float | None:
    """Simulated seconds from the report's first fault to the first
    firing of ``alert_name`` at or after it; None if it never fired (or
    the monitor observed no fault at all)."""
    if not report.fault_times:
        return None
    first_fault = min(report.fault_times)
    for record in report.alerts:
        if (
            record["state"] == "firing"
            and record["alert"] == alert_name
            and record["time"] >= first_fault
        ):
            return record["time"] - first_fault
    return None


_FAMILY_RUNNERS = {
    "gray": lambda scenario, seed, ops: run_gray(
        scenario, seed=seed, ops=ops, monitoring=True
    ),
    "migration": lambda scenario, seed, ops: run_migration_chaos(
        scenario, seed=seed, ops=ops, monitoring=True
    ),
    "recovery": lambda scenario, seed, ops: run_recovery_chaos(
        scenario, seed=seed, ops=ops, monitoring=True
    ),
    "replica": lambda scenario, seed, ops: run_replica_chaos(
        scenario, seed=seed, ops=ops, monitoring=True
    ),
}

#: workload sizes matching each family's own test defaults.
_FAMILY_OPS = {"gray": 60, "migration": 40, "recovery": 40, "replica": 40}


def _drain_clean_monitor(db) -> list[dict]:
    """Read and detach a seeded cluster's monitor after settling
    heartbeats; returns its (expected-empty) alert log."""
    for _ in range(3):
        db.cluster.heartbeat()
    monitor = db.cluster.monitor
    alerts = monitor.alert_log()
    monitor.close()
    return alerts


def run_clean_twin(family: str, scenario: str, seed: int = 1) -> list[dict]:
    """The no-fault control: same seeded cluster and config as the
    monitored scenario, zero injected faults.  Returns every alert
    record raised (the oracle requires none)."""
    ops = _FAMILY_OPS[family]
    if family == "gray":
        schedule = GRAY_SCHEDULES[scenario]
        quiet = GraySchedule(
            "clean", "no faults (detection control)", lambda db, plan: {}
        )
        config = LogBaseConfig.with_gray_resilience(
            segment_size=64 * 1024,
            read_cache_enabled=False,
            monitoring=True,
            tracing=True,
            slo_op_p99=dict(GRAY_SLO_TARGETS),
            slo_burn_threshold=GRAY_SLO_BURN_THRESHOLD,
            **schedule.overrides,
        )
        report = run_chaos(
            "clean", seed, ops, config=config, schedules={"clean": quiet}
        )
        return report.alerts
    if family == "migration":
        from repro.chaos.migration import _seeded_cluster

        db, _oracle, _keys, _tablet = _seeded_cluster(
            seed, ops, 4, monitoring=True
        )
        return _drain_clean_monitor(db)
    if family == "recovery":
        from repro.chaos.recovery import _seeded_cluster

        db, _oracle, _keys = _seeded_cluster(seed, ops, 4, monitoring=True)
        return _drain_clean_monitor(db)
    if family == "replica":
        from repro.chaos.replica import _seeded_cluster

        db, _oracle, _checker, _keys, _tablet = _seeded_cluster(
            seed, ops, 4, monitoring=True
        )
        return _drain_clean_monitor(db)
    raise KeyError(family)


def run_detection(
    family: str, scenario: str, seed: int = 1, *, clean_twin: bool = True
) -> DetectionResult:
    """Run one monitored fault schedule (and, by default, its clean
    twin) through the detection oracle."""
    expected = EXPECTED_ALERTS[(family, scenario)]
    result = DetectionResult(
        family=family,
        scenario=scenario,
        expected_alert=expected,
        budget=DETECTION_BUDGETS[family],
    )
    report = _FAMILY_RUNNERS[family](scenario, seed, _FAMILY_OPS[family])
    result.run_passed = report.passed
    result.fired = sorted(report.fired_alert_names())
    result.fault_times = list(report.fault_times)
    result.detection_latency = detection_latency_from_report(report, expected)
    if clean_twin:
        result.clean_alerts = run_clean_twin(family, scenario, seed)
    return result


def detection_matrix(
    seed: int = 1,
    *,
    scenarios: tuple[tuple[str, str], ...] | None = None,
    clean_twin: bool = True,
) -> list[DetectionResult]:
    """The full oracle: every entry of :data:`EXPECTED_ALERTS` (or the
    given subset), each with its clean twin."""
    keys = scenarios if scenarios is not None else tuple(EXPECTED_ALERTS)
    return [
        run_detection(family, scenario, seed, clean_twin=clean_twin)
        for family, scenario in keys
    ]
