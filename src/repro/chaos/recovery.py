"""Recovery chaos: crashes *during* recovery itself must stay safe.

Fast recovery adds three windows the older schedules never exercised:
the parallel redo pass of a restarting server, the splitter writing a
dead peer's per-tablet split files, and an adopter replaying a split
file into its own log.  Each scenario here arms a kill rule at the
matching crash point (``CP_RECOVERY_MID``, ``CP_SPLIT_PERSIST``,
``CP_ADOPT_MID``), lets the first attempt die mid-flight, retries the
interrupted procedure the way an operator (or the watchdog) would, and
verifies every previously-acked write against the
:class:`~repro.chaos.oracle.DurabilityOracle`:

- **crash-during-recovery** — the restarting server dies in the middle
  of its parallel redo; a second restart must converge (redo is
  restartable: it only rebuilds in-memory indexes).
- **crash-during-split** — the splitter dies with a split file still on
  its temp name and no fence for the new epoch; the retried failover
  re-splits under a fresh fence before anyone adopts (adopters reject
  the stale epoch).
- **crash-during-adoption** — an adopter dies mid-replay after durably
  re-homing part of a tablet; ownership never flipped, so the retried
  failover re-adopts and the (key, timestamp) dedupe keeps the replay
  from double-appending what the first attempt already wrote.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.chaos.oracle import DurabilityOracle, WriteStatus
from repro.chaos.runner import GROUP, KEY_DOMAIN, KEY_WIDTH, SCHEMA, TABLE
from repro.config import LogBaseConfig
from repro.core.database import LogBase
from repro.errors import LogBaseError, ServerDownError
from repro.sim.failure import (
    CP_ADOPT_MID,
    CP_RECOVERY_MID,
    CP_SPLIT_PERSIST,
    FaultPlan,
    fault_plan,
    kill_action,
)
from repro.sim.metrics import RECOVERY_ADOPT_SKIPPED

VICTIM = "ts-node-0"
HELPER = "ts-node-1"  # first healthy server: splitter and first adopter


@dataclass
class RecoveryChaosReport:
    """Outcome of one crash-during-recovery chaos run."""

    scenario: str
    seed: int
    ops: int
    acked: int = 0
    faults_fired: int = 0
    first_attempt_failed: bool = False
    restarted_servers: list[str] = field(default_factory=list)
    adopt_skipped: int = 0
    fence_epoch: int = 0
    keys_checked: int = 0
    violations: list[str] = field(default_factory=list)
    # Monitoring-plane artifacts (monitoring=True runs; empty otherwise).
    alerts: list = field(default_factory=list)
    postmortems: list = field(default_factory=list)
    fault_times: list = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether the run upheld the durability contract."""
        return not self.violations

    def fired_alert_names(self) -> set[str]:
        """Alert names that fired at least once during the run."""
        return {a["alert"] for a in self.alerts if a["state"] == "firing"}

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "ops": self.ops,
            "acked": self.acked,
            "faults_fired": self.faults_fired,
            "first_attempt_failed": self.first_attempt_failed,
            "restarted_servers": self.restarted_servers,
            "adopt_skipped": self.adopt_skipped,
            "fence_epoch": self.fence_epoch,
            "keys_checked": self.keys_checked,
            "violations": self.violations,
            "passed": self.passed,
            "alerts": self.alerts,
            "fault_times": self.fault_times,
            "postmortems": [
                {"reason": pm["reason"], "time": pm["time"]}
                for pm in self.postmortems
            ],
        }


def _seeded_cluster(
    seed: int, ops: int, n_nodes: int, *, monitoring: bool = False
) -> tuple[LogBase, DurabilityOracle, list[bytes]]:
    """A cluster with every tablet on the victim, ``ops`` acked writes
    (checkpoint at the halfway mark so both checkpoint reload and tail
    redo run), and a heat profile the heartbeat has already snapshotted."""
    config = LogBaseConfig.with_fast_recovery(
        segment_size=64 * 1024,
        monitoring=monitoring,
        monitor_scrape_interval=0.0,  # chaos detection: scrape every beat
    )
    db = LogBase(n_nodes=n_nodes, config=config)
    db.create_table(SCHEMA, tablets_per_server=2, only_servers=[VICTIM])
    oracle = DurabilityOracle()
    rng = random.Random(seed)
    keys = [
        str(v).zfill(KEY_WIDTH).encode()
        for v in rng.sample(range(KEY_DOMAIN), ops)
    ]
    client = db.client(db.cluster.machines[-1])
    for i, key in enumerate(keys):
        seq, value = oracle.next_value()
        client.put_raw(TABLE, key, GROUP, value)
        oracle.record(key, seq, WriteStatus.ACKED)
        if i == ops // 2:
            db.cluster.checkpoints[VICTIM].write_checkpoint()
    for _ in range(5):  # make one tablet hot for the bring-up ordering
        client.get_raw(TABLE, keys[0], GROUP)
    db.cluster.heartbeat()
    return db, oracle, keys


def _verify(db: LogBase, oracle: DurabilityOracle, report: RecoveryChaosReport) -> None:
    for _ in range(2):
        db.cluster.heartbeat()
    verifier = db.client(db.cluster.machines[-1])
    report.violations.extend(
        oracle.verify(lambda key: verifier.get_raw(TABLE, key, GROUP))
    )
    report.acked = oracle.counts()["acked"]
    report.keys_checked = len(oracle.keys)


def _crash_during_recovery(
    db: LogBase, oracle: DurabilityOracle, report: RecoveryChaosReport
) -> None:
    """Kill the victim again in the middle of its own parallel redo."""
    db.cluster.kill_node(VICTIM)
    if db.cluster.monitor is not None:
        # Detection tick *before* the operator restarts: the monitoring
        # plane must witness the dead victim, not the recovered cluster.
        db.cluster.heartbeat()
    plan = FaultPlan()
    plan.add(
        CP_RECOVERY_MID,
        kill_action(
            db.cluster.failures, VICTIM, ServerDownError(f"{VICTIM} died mid-redo")
        ),
        hits=2,
        server=VICTIM,
    )
    with fault_plan(plan):
        try:
            db.cluster.restart_server(VICTIM)
        except LogBaseError:
            report.first_attempt_failed = True
        # Second restart: redo only touched in-memory indexes, so a clean
        # re-run from the same checkpoint converges.
        db.cluster.restart_server(VICTIM)
        report.restarted_servers.append(VICTIM)
    report.faults_fired = len(plan.fired)


def _crash_during_split(
    db: LogBase, oracle: DurabilityOracle, report: RecoveryChaosReport
) -> None:
    """Kill the splitter with a split file still on its temp name."""
    db.cluster.kill_node(VICTIM)
    db.cluster.heartbeat()  # expire the victim's session
    plan = FaultPlan()
    plan.add(
        CP_SPLIT_PERSIST,
        kill_action(
            db.cluster.failures, HELPER, ServerDownError(f"{HELPER} died mid-split")
        ),
        server=VICTIM,
    )
    master = db.cluster.master
    with fault_plan(plan):
        try:
            master.handle_permanent_failure(VICTIM)
        except LogBaseError:
            report.first_attempt_failed = True
        db.cluster.restart_server(HELPER)
        report.restarted_servers.append(HELPER)
        db.cluster.heartbeat()
        # Ownership never flipped, so the tablets are still orphaned: the
        # retry re-splits under a fresh fence epoch and adopts cleanly.
        master.handle_permanent_failure(VICTIM)
    report.faults_fired = len(plan.fired)
    report.fence_epoch = master.catalog.fence_epochs.get(VICTIM, 0)


def _crash_during_adoption(
    db: LogBase, oracle: DurabilityOracle, report: RecoveryChaosReport
) -> None:
    """Kill the first adopter after it durably re-homed part of a tablet."""
    db.cluster.kill_node(VICTIM)
    db.cluster.heartbeat()
    plan = FaultPlan()
    plan.add(
        CP_ADOPT_MID,
        kill_action(
            db.cluster.failures, HELPER, ServerDownError(f"{HELPER} died mid-adoption")
        ),
        hits=3,  # let a couple of records reach the adopter's log first
        server=HELPER,
    )
    master = db.cluster.master
    with fault_plan(plan):
        try:
            master.handle_permanent_failure(VICTIM)
        except LogBaseError:
            report.first_attempt_failed = True
        # The adopter's restart redoes its own log — including whatever
        # the crashed adoption already appended.
        db.cluster.restart_server(HELPER)
        report.restarted_servers.append(HELPER)
        db.cluster.heartbeat()
        master.handle_permanent_failure(VICTIM)
    report.faults_fired = len(plan.fired)
    report.fence_epoch = master.catalog.fence_epochs.get(VICTIM, 0)
    report.adopt_skipped = int(
        db.cluster.total_counters().get(RECOVERY_ADOPT_SKIPPED, 0)
    )


RECOVERY_SCENARIOS = {
    "crash-during-recovery": _crash_during_recovery,
    "crash-during-split": _crash_during_split,
    "crash-during-adoption": _crash_during_adoption,
}


def run_recovery_chaos(
    scenario: str,
    *,
    seed: int = 1,
    ops: int = 40,
    n_nodes: int = 4,
    monitoring: bool = False,
) -> RecoveryChaosReport:
    """Run one seeded crash-during-recovery schedule; returns the verified
    report.

    With ``monitoring`` the cluster carries the monitoring plane and the
    report gains the alert log, post-mortem bundles, and fault times.

    Raises:
        KeyError: for an unknown scenario name.
        ValueError: if the cluster is too small for the topology.
    """
    runner = RECOVERY_SCENARIOS[scenario]
    if n_nodes < 4:
        raise ValueError("recovery chaos topology needs >= 4 nodes")
    db, oracle, _keys = _seeded_cluster(seed, ops, n_nodes, monitoring=monitoring)
    report = RecoveryChaosReport(scenario=scenario, seed=seed, ops=ops)
    runner(db, oracle, report)
    _verify(db, oracle, report)
    monitor = db.cluster.monitor
    if monitor is not None:
        report.alerts = monitor.alert_log()
        report.postmortems = monitor.postmortem_dicts()
        report.fault_times = monitor.fault_times()
        monitor.close()
    return report
