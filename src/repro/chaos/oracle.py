"""The durability oracle: what must survive a crash, and what must not.

Every chaos-workload write carries a globally unique monotonically
increasing sequence number encoded in its value (``s%08d``), so a single
read tells the oracle exactly which write it is seeing.  The client
reports the *observed fate* of each write:

* **acked** — the operation returned success to the client.  The paper's
  contract (commit record durable in the shared DFS before the ack,
  §3.7) makes this a hard promise: the write must be readable after any
  sequence of crashes and recoveries, and never shadowed by an older
  version.
* **aborted** — the transaction aborted *cleanly* (validation or lock
  conflict, before its write phase).  None of its writes may ever become
  visible.
* **indeterminate** — the operation failed mid-flight (server crashed
  during the write phase, commit outcome unknown to the client).  The
  write may or may not survive, but a transaction's writes must be
  atomic: all visible or none.

``verify`` replays those promises against post-recovery reads and
returns human-readable violations (empty = the run upheld durability).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable


class WriteStatus(enum.Enum):
    """Client-observed fate of one write."""

    ACKED = "acked"
    ABORTED = "aborted"
    INDETERMINATE = "indeterminate"


def encode_value(seq: int) -> bytes:
    """The chaos workload's value for sequence number ``seq``."""
    return b"s%08d" % seq


def decode_value(value: bytes) -> int | None:
    """Sequence number encoded in ``value``; None if unparseable."""
    if len(value) != 9 or not value.startswith(b"s"):
        return None
    try:
        return int(value[1:])
    except ValueError:
        return None


@dataclass
class TxnRecord:
    """One multi-record transaction: its member writes and fate."""

    members: dict[bytes, int]  # key -> seq
    status: WriteStatus


class DurabilityOracle:
    """Tracks every write's fate and checks the durability contract."""

    def __init__(self) -> None:
        self._next_seq = 1
        # key -> seq -> status of the write that produced that value.
        self._writes: dict[bytes, dict[int, WriteStatus]] = {}
        # key -> highest acked seq (the floor any later read must meet).
        self._acked: dict[bytes, int] = {}
        self._txns: list[TxnRecord] = []

    # -- recording ---------------------------------------------------------

    def next_value(self) -> tuple[int, bytes]:
        """Allocate the next sequence number and its encoded value."""
        seq = self._next_seq
        self._next_seq += 1
        return seq, encode_value(seq)

    def record(self, key: bytes, seq: int, status: WriteStatus) -> None:
        """Record the observed fate of write ``seq`` on ``key``.

        A retried operation may upgrade an earlier INDETERMINATE verdict
        to ACKED; an ack is never downgraded.
        """
        per_key = self._writes.setdefault(key, {})
        previous = per_key.get(seq)
        if previous is WriteStatus.ACKED:
            return
        per_key[seq] = status
        if status is WriteStatus.ACKED:
            self._acked[key] = max(self._acked.get(key, 0), seq)

    def record_txn(self, members: dict[bytes, int], status: WriteStatus) -> None:
        """Record a multi-record transaction's fate for every member."""
        for key, seq in members.items():
            self.record(key, seq, status)
        self._txns.append(TxnRecord(members=dict(members), status=status))

    # -- accounting --------------------------------------------------------

    @property
    def keys(self) -> list[bytes]:
        """Every key the workload ever wrote."""
        return sorted(self._writes)

    def counts(self) -> dict[str, int]:
        """How many writes ended in each status."""
        totals = {status.value: 0 for status in WriteStatus}
        for per_key in self._writes.values():
            for status in per_key.values():
                totals[status.value] += 1
        return totals

    def last_acked(self, key: bytes) -> int | None:
        """Highest acked sequence number on ``key``; None if never acked."""
        return self._acked.get(key)

    # -- verification ------------------------------------------------------

    def check_read(self, key: bytes, value: bytes | None) -> str | None:
        """Check one observed read against the contract; None if fine."""
        acked = self._acked.get(key)
        if value is None:
            if acked is not None:
                return f"{key!r}: acked write s{acked:08d} lost (key absent)"
            return None
        seq = decode_value(value)
        if seq is None or seq not in self._writes.get(key, {}):
            return f"{key!r}: ghost value {value!r} never written to this key"
        status = self._writes[key][seq]
        if status is WriteStatus.ABORTED:
            return f"{key!r}: cleanly-aborted write s{seq:08d} is visible"
        if acked is not None and seq < acked:
            return (
                f"{key!r}: read s{seq:08d} but s{acked:08d} was acked "
                "(acknowledged write shadowed)"
            )
        return None

    def verify(self, read: Callable[[bytes], bytes | None]) -> list[str]:
        """Read back every key and return all contract violations.

        Args:
            read: post-recovery point read (e.g. ``client.get_raw``).
        """
        violations: list[str] = []
        observed: dict[bytes, bytes | None] = {}
        for key in self.keys:
            value = read(key)
            observed[key] = value
            problem = self.check_read(key, value)
            if problem is not None:
                violations.append(problem)
        # Atomicity of indeterminate transactions: because every chaos
        # transaction writes fresh dedicated keys, its value is visible on
        # a member key iff the transaction's write survived there — so a
        # partial survival is a torn (non-atomic) commit.
        for txn in self._txns:
            if txn.status is not WriteStatus.INDETERMINATE:
                continue  # acked/aborted members are covered per key above
            visible = [
                key
                for key, seq in txn.members.items()
                if observed.get(key) is not None
                and decode_value(observed[key]) == seq
            ]
            if visible and len(visible) != len(txn.members):
                violations.append(
                    f"torn transaction: {sorted(visible)!r} visible but "
                    f"{sorted(set(txn.members) - set(visible))!r} missing"
                )
        return violations
