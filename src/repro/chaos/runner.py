"""The chaos harness: a seeded workload under a fault schedule.

One run builds a fresh 4-node cluster with the fault-tolerance gates on
(:meth:`LogBaseConfig.with_fault_tolerance`), arms a named schedule from
:mod:`repro.chaos.schedules`, and drives a deterministic mix of
single-record writes, multi-record transactions, reads, checkpoints and
compactions while the schedule kills nodes, partitions the network and
revives machines.  A cluster heartbeat runs after every operation — the
failure-detection tick a real deployment runs continuously — so session
expiry, auto-failover and background re-replication happen *outside* the
victim's own call stack, as they would in production.

After the workload the harness heals partitions, restarts every dead
machine through checkpoint+redo recovery, and asks the
:class:`~repro.chaos.oracle.DurabilityOracle` to read back every key the
workload ever touched.  The run passes iff the oracle reports no
violation of the durability contract.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.chaos.oracle import DurabilityOracle, WriteStatus
from repro.chaos.schedules import SCHEDULES
from repro.config import LogBaseConfig
from repro.core.database import LogBase
from repro.core.schema import ColumnGroup, TableSchema
from repro.errors import (
    LogBaseError,
    ServerDownError,
    TransactionAborted,
)
from repro.obs.hist import Histogram
from repro.sim.failure import FaultPlan, fault_plan
from repro.sim.metrics import (
    ADMISSION_SHED,
    BREAKER_TRIPS,
    CLIENT_RETRIES,
    DEADLINES_EXCEEDED,
    DFS_HEDGE_FIRED,
    DFS_HEDGE_LOSSES,
    DFS_HEDGE_WINS,
    HIST_CHAOS_READ_LATENCY,
)

TABLE = "chaos"
GROUP = "g"
KEY_WIDTH = 12
KEY_DOMAIN = 2_000_000_000

SCHEMA = TableSchema(TABLE, "id", (ColumnGroup(GROUP, ("v",)),))

# Servers the chaos table is placed on; the other nodes serve as pure
# replica holders and failover adopters (see repro.chaos.schedules).
HOME_SERVERS = ["ts-node-0", "ts-node-1"]


@dataclass
class ChaosReport:
    """Outcome of one chaos run (shaped like a benchmark result)."""

    scenario: str
    seed: int
    ops: int
    acked: int = 0
    aborted: int = 0
    indeterminate: int = 0
    faults_fired: int = 0
    client_retries: int = 0
    rescued_ops: int = 0
    expired_servers: list[str] = field(default_factory=list)
    restarted_servers: list[str] = field(default_factory=list)
    rereplicated: int = 0
    under_replicated_after: int = 0
    keys_checked: int = 0
    violations: list[str] = field(default_factory=list)
    events_run: int = 0
    reads: int = 0
    read_p50: float = 0.0
    read_p99: float = 0.0
    read_max: float = 0.0
    hedges_fired: int = 0
    hedge_wins: int = 0
    hedge_losses: int = 0
    breaker_trips: int = 0
    admission_sheds: int = 0
    deadline_exceeded: int = 0
    # Monitoring-plane artifacts (config.monitoring gate; empty otherwise):
    # the structured alert log, the flight recorder's post-mortem bundles,
    # and the simulated times of every observed fault.
    alerts: list = field(default_factory=list)
    postmortems: list = field(default_factory=list)
    fault_times: list = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether the run upheld the durability contract."""
        return not self.violations

    def fired_alert_names(self) -> set[str]:
        """Alert names that fired at least once during the run."""
        return {a["alert"] for a in self.alerts if a["state"] == "firing"}

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "ops": self.ops,
            "acked": self.acked,
            "aborted": self.aborted,
            "indeterminate": self.indeterminate,
            "faults_fired": self.faults_fired,
            "client_retries": self.client_retries,
            "rescued_ops": self.rescued_ops,
            "expired_servers": self.expired_servers,
            "restarted_servers": self.restarted_servers,
            "rereplicated": self.rereplicated,
            "under_replicated_after": self.under_replicated_after,
            "keys_checked": self.keys_checked,
            "violations": self.violations,
            "passed": self.passed,
            "events_run": self.events_run,
            "reads": self.reads,
            "read_p50": self.read_p50,
            "read_p99": self.read_p99,
            "read_max": self.read_max,
            "hedges_fired": self.hedges_fired,
            "hedge_wins": self.hedge_wins,
            "hedge_losses": self.hedge_losses,
            "breaker_trips": self.breaker_trips,
            "admission_sheds": self.admission_sheds,
            "deadline_exceeded": self.deadline_exceeded,
            "alerts": self.alerts,
            "fault_times": self.fault_times,
            # Bundles stay on the dataclass (they embed whole series
            # tails); the dict form carries a one-line summary each.
            "postmortems": [
                {"reason": pm["reason"], "time": pm["time"]}
                for pm in self.postmortems
            ],
        }


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (0 when empty).

    Reference implementation: report percentiles now come from the
    :class:`~repro.obs.hist.Histogram`; the control-arm identity test
    asserts the histogram reproduces this list-based computation.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


class _Workload:
    """Seeded operation stream bound to one cluster and oracle."""

    def __init__(self, db: LogBase, seed: int) -> None:
        self.db = db
        self.rng = random.Random(seed)
        self.oracle = DurabilityOracle()
        self.client = db.client(db.cluster.machines[2])
        self.rescued_ops = 0
        self.expired: list[str] = []
        self.rereplicated = 0
        # Read-latency tail without storing samples: gray-failure
        # mitigation is judged on this histogram's p50/p99/max.
        self.read_latency = Histogram(HIST_CHAOS_READ_LATENCY)
        self._used_keys: set[bytes] = set()
        self._overwrite_pool: list[bytes] = []
        # Key ranges per tablet, so transaction keys can be co-located on
        # one tablet (entity-group style single-server commits, §3.2).
        self._ranges = []
        for tablet in db.cluster.master.tablets(TABLE):
            start = int(tablet.key_range.start or b"0")
            end = (
                int(tablet.key_range.end)
                if tablet.key_range.end is not None
                else KEY_DOMAIN
            )
            self._ranges.append((start, end))

    # -- key generation ----------------------------------------------------

    def _fresh_key(self, tablet: int) -> bytes:
        start, end = self._ranges[tablet]
        while True:
            key = str(self.rng.randrange(start, end)).zfill(KEY_WIDTH).encode()
            if key not in self._used_keys:
                self._used_keys.add(key)
                return key

    def _write_key(self) -> bytes:
        if self._overwrite_pool and self.rng.random() < 0.6:
            return self.rng.choice(self._overwrite_pool)
        key = self._fresh_key(self.rng.randrange(len(self._ranges)))
        self._overwrite_pool.append(key)
        return key

    # -- operations --------------------------------------------------------

    def _rescue(self):
        """Failure-detector tick between an op's failure and its retry:
        expire dead sessions so auto-failover re-homes the tablets."""
        tick = self.db.cluster.heartbeat()
        self.expired.extend(tick["expired"])
        self.rereplicated += tick["rereplicated"]
        self.client.invalidate_cache()
        self.rescued_ops += 1

    def put(self) -> None:
        key = self._write_key()
        seq, value = self.oracle.next_value()
        try:
            self.client.put_raw(TABLE, key, GROUP, value)
        except ServerDownError:
            self._rescue()
            try:
                self.client.put_raw(TABLE, key, GROUP, value)
            except LogBaseError:
                self.oracle.record(key, seq, WriteStatus.INDETERMINATE)
                return
        except LogBaseError:
            self.oracle.record(key, seq, WriteStatus.INDETERMINATE)
            return
        self.oracle.record(key, seq, WriteStatus.ACKED)

    def txn(self) -> None:
        # Fresh dedicated keys on one tablet: single-server commit, and
        # the oracle can check all-or-nothing visibility post hoc.
        tablet = self.rng.randrange(len(self._ranges))
        members: dict[bytes, int] = {}
        txn = self.db.begin()
        try:
            for _ in range(2):
                key = self._fresh_key(tablet)
                seq, value = self.oracle.next_value()
                members[key] = seq
                txn.write_raw(TABLE, key, GROUP, value)
        except ServerDownError:
            # Staging never touches the log: nothing durable happened,
            # so this is a clean abort however partial the staging was.
            txn.abort()
            self.oracle.record_txn(members, WriteStatus.ABORTED)
            self._rescue()
            return
        try:
            txn.commit()
        except TransactionAborted as exc:
            # A clean abort (validation/lock conflict) happens before the
            # write phase: nothing may surface.  An abort *caused by* an
            # infrastructure error may have died anywhere around the
            # commit record: outcome unknown, but it must be atomic.
            clean = exc.__cause__ is None
            status = WriteStatus.ABORTED if clean else WriteStatus.INDETERMINATE
            self.oracle.record_txn(members, status)
            if not clean:
                self._rescue()
            return
        except LogBaseError:
            self.oracle.record_txn(members, WriteStatus.INDETERMINATE)
            self._rescue()
            return
        self.oracle.record_txn(members, WriteStatus.ACKED)

    def read(self) -> str | None:
        if not self._overwrite_pool:
            return None
        key = self.rng.choice(self._overwrite_pool)
        # Track the latency of every read attempt, failed ones included —
        # gray-failure mitigation is judged on the tail of this series.
        self.client.last_op_seconds = 0.0
        try:
            try:
                value = self.client.get_raw(TABLE, key, GROUP)
            except ServerDownError:
                self._rescue()
                try:
                    value = self.client.get_raw(TABLE, key, GROUP)
                except LogBaseError:
                    return None  # still failing over; final verify covers it
            except LogBaseError:
                return None
            return self.oracle.check_read(key, value)
        finally:
            self.read_latency.record(self.client.last_op_seconds)

    def checkpoint_all(self) -> None:
        for server in self.db.cluster.servers:
            if not server.serving:
                continue
            try:
                self.db.cluster.checkpoints[server.name].write_checkpoint()
            except LogBaseError:
                self._rescue()

    def compact_all(self) -> None:
        for server in self.db.cluster.servers:
            if not server.serving:
                continue
            try:
                server.compact()
            except LogBaseError:
                self._rescue()


def run_chaos(
    scenario: str,
    seed: int = 1,
    ops: int = 60,
    *,
    n_nodes: int = 4,
    config: LogBaseConfig | None = None,
    schedules: dict[str, "object"] | None = None,
) -> ChaosReport:
    """Execute one chaos scenario and verify the durability contract.

    Args:
        scenario: key into ``schedules`` (default
            :data:`repro.chaos.schedules.SCHEDULES`).
        seed: workload RNG seed (the fault schedule itself is fixed; the
            seed varies which operations the faults land on).
        ops: workload operations before recovery + verification.
        schedules: alternative schedule registry (e.g.
            :data:`repro.chaos.gray.GRAY_SCHEDULES`).

    Raises:
        KeyError: unknown scenario name.
        ValueError: cluster too small for the standard chaos topology.
    """
    registry = schedules if schedules is not None else SCHEDULES
    schedule = registry[scenario]
    if n_nodes < 4:
        raise ValueError("chaos topology needs >= 4 nodes")
    if config is None:
        # The matrix runs with incremental compaction on: its per-plan
        # installs are the newest crash surface the oracle must cover
        # (CP_COMPACTION_MID now fires once per plan).  Pass an explicit
        # config to exercise the monolithic path instead.
        config = LogBaseConfig.with_fault_tolerance(
            segment_size=64 * 1024, incremental_compaction=True
        )
    db = LogBase(n_nodes=n_nodes, config=config)
    db.cluster.master.enable_auto_failover()
    db.create_table(SCHEMA, tablets_per_server=2, only_servers=list(HOME_SERVERS))

    report = ChaosReport(scenario=scenario, seed=seed, ops=ops)
    plan = FaultPlan()
    events = schedule.install(db, plan)
    workload = _Workload(db, seed)

    checkpoint_at = ops // 3
    compact_at = (2 * ops) // 3
    monitor = db.cluster.monitor
    with fault_plan(plan):
        for i in range(ops):
            event = events.get(i)
            if event is not None:
                # Schedule events the injector can't see (overload
                # bursts, link slows, mid-limp scans) still stamp a
                # fault time for detection-latency accounting.
                if monitor is not None:
                    monitor.note_fault("schedule-event", {"index": i})
                event()
                report.events_run += 1
            if i == checkpoint_at:
                workload.checkpoint_all()
            elif i == compact_at:
                workload.compact_all()
            else:
                roll = workload.rng.random()
                if roll < 0.55:
                    workload.put()
                elif roll < 0.75:
                    workload.txn()
                else:
                    problem = workload.read()
                    if problem is not None:
                        report.violations.append(f"mid-run: {problem}")
            tick = db.cluster.heartbeat()
            for name in tick["expired"]:
                if name not in report.expired_servers:
                    report.expired_servers.append(name)
            report.rereplicated += tick["rereplicated"]

    # -- recovery: heal the world, restart the dead, let repair finish ----
    config.network.partitions.heal()
    for name in list(db.cluster.failures.killed):
        db.cluster.restart_server(name)
        report.restarted_servers.append(name)
    for _ in range(2):
        tick = db.cluster.heartbeat()
        report.rereplicated += tick["rereplicated"]

    # -- verification -----------------------------------------------------
    verifier = db.client(db.cluster.machines[2])
    report.violations.extend(
        workload.oracle.verify(
            lambda key: verifier.get_raw(TABLE, key, GROUP)
        )
    )
    counts = workload.oracle.counts()
    report.acked = counts["acked"]
    report.aborted = counts["aborted"]
    report.indeterminate = counts["indeterminate"]
    report.faults_fired = len(plan.fired)
    report.rescued_ops = workload.rescued_ops
    # Expiries/repairs observed by rescue ticks rather than the op loop.
    for name in workload.expired:
        if name not in report.expired_servers:
            report.expired_servers.append(name)
    report.rereplicated += workload.rereplicated
    totals = db.cluster.total_counters()
    report.client_retries = int(totals.get(CLIENT_RETRIES, 0))
    report.hedges_fired = int(totals.get(DFS_HEDGE_FIRED, 0))
    report.hedge_wins = int(totals.get(DFS_HEDGE_WINS, 0))
    report.hedge_losses = int(totals.get(DFS_HEDGE_LOSSES, 0))
    report.breaker_trips = int(totals.get(BREAKER_TRIPS, 0))
    report.admission_sheds = int(totals.get(ADMISSION_SHED, 0))
    report.deadline_exceeded = int(totals.get(DEADLINES_EXCEEDED, 0))
    hist = workload.read_latency
    report.reads = int(hist.count)
    report.read_p50 = hist.percentile(0.50)
    report.read_p99 = hist.percentile(0.99)
    report.read_max = hist.max if hist.count else 0.0
    report.under_replicated_after = len(
        db.cluster.dfs.namenode.under_replicated
    )
    report.keys_checked = len(workload.oracle.keys)
    if monitor is not None:
        report.alerts = monitor.alert_log()
        report.postmortems = monitor.postmortem_dicts()
        report.fault_times = monitor.fault_times()
        monitor.close()
    return report
