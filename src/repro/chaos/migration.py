"""Migration chaos: handoffs interrupted at every step must stay safe.

Live migration opens windows the recovery schedules never exercised: a
source dying while the target replays its log, a target dying inside the
fenced flip, the *master* dying with a migration half-persisted, and the
nastiest of all — the old owner partitioned away while ownership moves,
where only the lapsed lease stands between the cluster and two servers
serving the same tablet.  Each scenario here arms a fault at the matching
crash point (``CP_MIGRATION_PREPARE`` / ``CP_MIGRATION_CATCHUP`` /
``CP_MIGRATION_FLIP``), lets the first attempt die mid-flight, converges
the way an operator (or a freshly-elected master) would via
:meth:`~repro.core.migration.LiveMigrator.resume`, and then verifies two
contracts:

* the **durability oracle** — every write acked before, during, or after
  the handoff is readable afterwards, never shadowed by an older
  version; and
* the **single-owner invariant** — at no observable point do two live
  servers both *serve* a tablet.  Holding stale state is fine (a
  partitioned ex-owner keeps its indexes until heartbeat reconciliation
  reclaims them); being *willing to serve* — alive, unfenced, lease
  valid — is what must be unique, and must match the catalog.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.chaos.oracle import DurabilityOracle, WriteStatus
from repro.chaos.runner import GROUP, KEY_DOMAIN, KEY_WIDTH, SCHEMA, TABLE
from repro.config import LogBaseConfig
from repro.core.database import LogBase
from repro.errors import (
    LogBaseError,
    ServerDownError,
    SessionExpiredError,
    TabletMigratingError,
)
from repro.sim.failure import (
    CP_MIGRATION_CATCHUP,
    CP_MIGRATION_FLIP,
    FaultPlan,
    fault_plan,
    kill_action,
)

SOURCE = "ts-node-0"
TARGET = "ts-node-1"


@dataclass
class MigrationChaosReport:
    """Outcome of one interrupted-migration chaos run."""

    scenario: str
    seed: int
    ops: int
    acked: int = 0
    faults_fired: int = 0
    first_attempt_failed: bool = False
    resume_outcomes: list[dict] = field(default_factory=list)
    final_owner: str = ""
    stale_owner_rejected: bool = False
    keys_checked: int = 0
    violations: list[str] = field(default_factory=list)
    # Monitoring-plane artifacts (monitoring=True runs; empty otherwise).
    alerts: list = field(default_factory=list)
    postmortems: list = field(default_factory=list)
    fault_times: list = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether the run upheld durability and single ownership."""
        return not self.violations

    def fired_alert_names(self) -> set[str]:
        """Alert names that fired at least once during the run."""
        return {a["alert"] for a in self.alerts if a["state"] == "firing"}

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "ops": self.ops,
            "acked": self.acked,
            "faults_fired": self.faults_fired,
            "first_attempt_failed": self.first_attempt_failed,
            "resume_outcomes": self.resume_outcomes,
            "final_owner": self.final_owner,
            "stale_owner_rejected": self.stale_owner_rejected,
            "keys_checked": self.keys_checked,
            "violations": self.violations,
            "passed": self.passed,
            "alerts": self.alerts,
            "fault_times": self.fault_times,
            "postmortems": [
                {"reason": pm["reason"], "time": pm["time"]}
                for pm in self.postmortems
            ],
        }


def check_single_owner(db: LogBase) -> list[str]:
    """The single-owner invariant, checked against live cluster state.

    For every catalog-assigned tablet, at most one live server may be
    *willing to serve* it — holding it, unfenced, with a valid ownership
    lease — and when one is, it must be the catalog owner.  (An owner
    temporarily unable to serve — dead, mid-flip, lease lapsed — is an
    availability gap, not a safety violation.)
    """
    violations: list[str] = []
    catalog = db.cluster.master.catalog
    gated = db.cluster.config.live_migration
    for tablet_id, owner in catalog.assignments.items():
        willing = []
        for server in db.cluster.servers:
            if not server.machine.alive or not server.serving:
                continue
            if tablet_id not in server.tablets:
                continue
            if tablet_id in server.migrating_tablets:
                continue
            if gated and not server.lease_valid(tablet_id):
                continue
            willing.append(server.name)
        if len(willing) > 1:
            violations.append(
                f"single-owner: {tablet_id} served by {sorted(willing)}"
            )
        elif willing and willing[0] != owner:
            violations.append(
                f"single-owner: {tablet_id} served by {willing[0]}, "
                f"catalog says {owner}"
            )
    return violations


def _seeded_cluster(
    seed: int,
    ops: int,
    n_nodes: int,
    *,
    n_masters: int = 1,
    monitoring: bool = False,
) -> tuple[LogBase, DurabilityOracle, list[bytes], str]:
    """A live-migration cluster with every tablet on the source, ``ops``
    acked writes, and the heartbeat heat snapshot taken.  Returns the id
    of the tablet the scenarios will migrate (the one covering the most
    written keys)."""
    config = LogBaseConfig.with_live_migration(
        segment_size=64 * 1024,
        monitoring=monitoring,
        # Chaos detection wants every heartbeat scraped, not the
        # production cadence.
        monitor_scrape_interval=0.0,
    )
    db = LogBase(n_nodes=n_nodes, config=config, n_masters=n_masters)
    db.create_table(SCHEMA, tablets_per_server=2, only_servers=[SOURCE])
    oracle = DurabilityOracle()
    rng = random.Random(seed)
    keys = [
        str(v).zfill(KEY_WIDTH).encode()
        for v in rng.sample(range(KEY_DOMAIN), ops)
    ]
    client = db.client(db.cluster.machines[-1])
    for key in keys:
        seq, value = oracle.next_value()
        client.put_raw(TABLE, key, GROUP, value)
        oracle.record(key, seq, WriteStatus.ACKED)
    db.cluster.heartbeat()
    heat = db.cluster.tablet_heat
    victim_tablet = max(
        db.cluster.master.catalog.assignments, key=lambda t: heat.get(t, 0.0)
    )
    return db, oracle, keys, victim_tablet


def _write_during(db: LogBase, oracle: DurabilityOracle, keys: list[bytes]) -> None:
    """A few more acked writes between fault and convergence — they must
    survive the interrupted handoff too."""
    client = db.client(db.cluster.machines[-1])
    for key in keys:
        seq, value = oracle.next_value()
        try:
            client.put_raw(TABLE, key, GROUP, value)
            oracle.record(key, seq, WriteStatus.ACKED)
        except LogBaseError:
            oracle.record(key, seq, WriteStatus.INDETERMINATE)


def _verify(
    db: LogBase, oracle: DurabilityOracle, report: MigrationChaosReport
) -> None:
    for _ in range(2):
        db.cluster.heartbeat()
    report.violations.extend(check_single_owner(db))
    verifier = db.client(db.cluster.machines[-1])
    report.violations.extend(
        oracle.verify(lambda key: verifier.get_raw(TABLE, key, GROUP))
    )
    report.acked = oracle.counts()["acked"]
    report.keys_checked = len(oracle.keys)


def _crash_source_mid_catchup(
    db: LogBase,
    oracle: DurabilityOracle,
    keys: list[bytes],
    tablet_id: str,
    report: MigrationChaosReport,
) -> None:
    """The source node dies while the target is still catching up.

    Nothing has flipped, so resume aborts the migration; the restarted
    source redoes its own log (the database *is* the log) and serves
    every acked write again once the heartbeat re-grants its lease.
    """
    plan = FaultPlan()
    plan.add(
        CP_MIGRATION_CATCHUP,
        kill_action(
            db.cluster.failures, SOURCE, ServerDownError(f"{SOURCE} died mid-catchup")
        ),
        tablet=tablet_id,
        stage="split",
    )
    with fault_plan(plan):
        try:
            db.cluster.migrate_tablet(tablet_id, TARGET)
        except LogBaseError:
            report.first_attempt_failed = True
    report.faults_fired = len(plan.fired)
    if db.cluster.monitor is not None:
        # Detection tick *before* the operator reacts: the monitoring
        # plane must see the dead source, not the post-restart cluster.
        db.cluster.heartbeat()
    db.cluster.restart_server(SOURCE)
    db.cluster.heartbeat()
    report.resume_outcomes = db.cluster.resume_migrations()


def _crash_target_mid_flip(
    db: LogBase,
    oracle: DurabilityOracle,
    keys: list[bytes],
    tablet_id: str,
    report: MigrationChaosReport,
) -> None:
    """The target dies inside the fenced flip, before the commit point.

    The source is already fenced (bouncing ops) when the target goes
    down; resume either finishes the flip with the restarted target —
    its log already holds the caught-up records — or aborts back to the
    source.  Both converge to one owner.
    """
    plan = FaultPlan()
    plan.add(
        CP_MIGRATION_FLIP,
        kill_action(
            db.cluster.failures, TARGET, ServerDownError(f"{TARGET} died mid-flip")
        ),
        tablet=tablet_id,
        stage="commit",
    )
    with fault_plan(plan):
        try:
            db.cluster.migrate_tablet(tablet_id, TARGET)
        except LogBaseError:
            report.first_attempt_failed = True
    report.faults_fired = len(plan.fired)
    if db.cluster.monitor is not None:
        db.cluster.heartbeat()  # detection tick before the restart
    db.cluster.restart_server(TARGET)
    db.cluster.heartbeat()
    report.resume_outcomes = db.cluster.resume_migrations()


def _master_failover_mid_migration(
    db: LogBase,
    oracle: DurabilityOracle,
    keys: list[bytes],
    tablet_id: str,
    report: MigrationChaosReport,
) -> None:
    """The active master dies between catch-up and flip.

    The migration record is persisted in the coordination service, so
    the promoted standby re-reads it and converges — and the deposed
    master's expired session fences any attempt it might still make to
    advance the handoff.
    """
    old_master = db.cluster.master

    def depose(ctx: dict) -> None:
        old_master.session.expire()
        raise SessionExpiredError(f"{old_master.name} deposed mid-migration")

    plan = FaultPlan()
    plan.add(CP_MIGRATION_CATCHUP, depose, tablet=tablet_id, stage="adopt")
    with fault_plan(plan):
        try:
            db.cluster.migrate_tablet(tablet_id, TARGET)
        except LogBaseError:
            report.first_attempt_failed = True
    report.faults_fired = len(plan.fired)
    new_master = db.cluster.master
    if new_master is old_master:
        report.violations.append("failover: no standby took over the mastership")
        return
    _write_during(db, oracle, keys[:5])
    report.resume_outcomes = db.cluster.resume_migrations()
    db.cluster.heartbeat()


def _partition_old_owner(
    db: LogBase,
    oracle: DurabilityOracle,
    keys: list[bytes],
    tablet_id: str,
    report: MigrationChaosReport,
) -> None:
    """The old owner is partitioned away exactly as the flip begins.

    The master cannot tell the source to fence itself, so it waits out
    the ownership lease instead; the isolated source, still alive and
    still holding the tablet, must *reject* ops once its lease lapses —
    that rejection is the only thing preventing a double-serve.  After
    the heal, heartbeat reconciliation quietly reclaims the stale copy.
    """
    partitions = db.cluster.config.network.partitions
    source = db.cluster.server_by_name(SOURCE)

    def cut_off(ctx: dict) -> None:
        partitions.isolate(source.machine.name)

    plan = FaultPlan()
    plan.add(CP_MIGRATION_FLIP, cut_off, tablet=tablet_id, stage="begin")
    with fault_plan(plan):
        migration = db.cluster.migrate_tablet(tablet_id, TARGET)
    report.faults_fired = len(plan.fired)
    if not migration.waited_lease:
        report.violations.append(
            "partition: flip did not wait out the unreachable owner's lease"
        )
    # The stale owner still holds the tablet but its lease has lapsed: a
    # client that never heard about the move and reaches it directly must
    # be bounced, not served.
    probe = next(k for k in keys if db.cluster.server_by_name(TARGET).tablets[
        tablet_id
    ].covers(k))
    try:
        source.read(TABLE, probe, GROUP)
    except TabletMigratingError:
        report.stale_owner_rejected = True
    except LogBaseError:
        pass
    if not report.stale_owner_rejected:
        report.violations.append(
            "partition: lease-lapsed old owner still served a read"
        )
    partitions.heal()
    db.cluster.heartbeat()
    report.resume_outcomes = db.cluster.resume_migrations()


MIGRATION_SCENARIOS = {
    "crash-source-mid-catchup": _crash_source_mid_catchup,
    "crash-target-mid-flip": _crash_target_mid_flip,
    "master-failover-mid-migration": _master_failover_mid_migration,
    "partition-old-owner": _partition_old_owner,
}


def run_migration_chaos(
    scenario: str,
    *,
    seed: int = 1,
    ops: int = 40,
    n_nodes: int = 4,
    monitoring: bool = False,
) -> MigrationChaosReport:
    """Run one seeded interrupted-migration schedule; returns the
    verified report.

    With ``monitoring`` the cluster carries the monitoring plane and the
    report gains the alert log, post-mortem bundles, and fault times.

    Raises:
        KeyError: for an unknown scenario name.
        ValueError: if the cluster is too small for the topology.
    """
    runner = MIGRATION_SCENARIOS[scenario]
    if n_nodes < 3:
        raise ValueError("migration chaos topology needs >= 3 nodes")
    n_masters = 2 if scenario == "master-failover-mid-migration" else 1
    db, oracle, keys, tablet_id = _seeded_cluster(
        seed, ops, n_nodes, n_masters=n_masters, monitoring=monitoring
    )
    report = MigrationChaosReport(scenario=scenario, seed=seed, ops=ops)
    runner(db, oracle, keys, tablet_id, report)
    report.final_owner = db.cluster.master.catalog.assignments.get(tablet_id, "")
    _verify(db, oracle, report)
    monitor = db.cluster.monitor
    if monitor is not None:
        report.alerts = monitor.alert_log()
        report.postmortems = monitor.postmortem_dicts()
        report.fault_times = monitor.fault_times()
        monitor.close()
    return report
