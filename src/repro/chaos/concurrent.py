"""Concurrent-client chaos: group-commit durability under crash points.

The durability hazard group commit introduces is acking a member whose
group never replicated: N clients park on one flush, and a crash inside
that flush (the ``CP_LOG_APPEND`` / ``CP_DFS_APPEND`` hooks) must fail
*every* member — an ack for any of them would violate Guarantee 1.

This runner drives N logical clients through the virtual-time scheduler
against a 4-node cluster with the ``group_commit`` and fault-tolerance
gates on, arms a kill rule at a crash point so the victim dies mid-group-
flush, lets auto-failover re-home the tablets (the adopters run their own
commit coordinators), restarts the dead node through recovery, and asks
the :class:`~repro.chaos.oracle.DurabilityOracle` to read back every key:
ACKED values must survive, INDETERMINATE ones may go either way, and the
run passes iff no violation is reported.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.chaos.oracle import DurabilityOracle, WriteStatus
from repro.chaos.runner import GROUP, KEY_DOMAIN, KEY_WIDTH, SCHEMA, TABLE
from repro.config import LogBaseConfig
from repro.core.database import LogBase
from repro.errors import LogBaseError, ServerDownError
from repro.sim.failure import CP_LOG_APPEND, FaultPlan, fault_plan, kill_action
from repro.sim.metrics import (
    COMMIT_ACKS_DEFERRED,
    COMMIT_GROUP_FANIN,
    COMMIT_GROUPS,
)
from repro.sim.scheduler import Advance, ConcurrentScheduler, Submit

VICTIM = "ts-node-0"


@dataclass
class GroupCommitChaosReport:
    """Outcome of one concurrent group-commit chaos run."""

    seed: int
    crash_point: str
    clients: int
    ops: int
    acked: int = 0
    aborted: int = 0
    indeterminate: int = 0
    faults_fired: int = 0
    groups: int = 0
    mean_fanin: float = 0.0
    acks_deferred: int = 0
    restarted_servers: list[str] = field(default_factory=list)
    keys_checked: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether the run upheld the durability contract."""
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "crash_point": self.crash_point,
            "clients": self.clients,
            "ops": self.ops,
            "acked": self.acked,
            "aborted": self.aborted,
            "indeterminate": self.indeterminate,
            "faults_fired": self.faults_fired,
            "groups": self.groups,
            "mean_fanin": self.mean_fanin,
            "acks_deferred": self.acks_deferred,
            "restarted_servers": self.restarted_servers,
            "keys_checked": self.keys_checked,
            "violations": self.violations,
            "passed": self.passed,
        }


def run_group_commit_chaos(
    *,
    seed: int = 1,
    n_clients: int = 8,
    ops_per_client: int = 12,
    crash_point_name: str = CP_LOG_APPEND,
    crash_after_hits: int = 5,
    n_nodes: int = 4,
    config: LogBaseConfig | None = None,
) -> GroupCommitChaosReport:
    """One seeded concurrent chaos schedule; returns the verified report.

    ``crash_after_hits`` picks which flush the kill lands on, so
    different seeds and hit counts produce different interleavings of
    the crash against open/sealed/in-flight groups.
    """
    if n_nodes < 4:
        raise ValueError("chaos topology needs >= 4 nodes")
    if config is None:
        config = LogBaseConfig.with_fault_tolerance(
            segment_size=64 * 1024, group_commit=True
        )
    db = LogBase(n_nodes=n_nodes, config=config)
    db.cluster.master.enable_auto_failover()
    # Every tablet on the victim: the crash lands mid-group-flush with
    # all concurrent clients parked on the victim's coordinator.
    db.create_table(SCHEMA, tablets_per_server=2, only_servers=[VICTIM])

    total_ops = n_clients * ops_per_client
    report = GroupCommitChaosReport(
        seed=seed,
        crash_point=crash_point_name,
        clients=n_clients,
        ops=total_ops,
    )
    oracle = DurabilityOracle()
    rng = random.Random(seed)
    keys = [
        str(v).zfill(KEY_WIDTH).encode()
        for v in rng.sample(range(KEY_DOMAIN), total_ops)
    ]

    plan = FaultPlan()
    plan.add(
        crash_point_name,
        kill_action(
            db.cluster.failures,
            VICTIM,
            ServerDownError(f"{VICTIM} crashed mid-group-flush"),
        ),
        hits=crash_after_hits,
    )

    def rescue(client) -> None:
        # Failure-detector tick: expire the victim's session so the
        # master re-homes its tablets onto live adopters (which run
        # their own commit coordinators).
        db.cluster.heartbeat()
        client.invalidate_cache()

    def chaos_client(i: int):
        machine = db.cluster.machines[i % len(db.cluster.machines)]
        client = db.client(machine)
        for j in range(ops_per_client):
            key = keys[i * ops_per_client + j]
            seq, value = oracle.next_value()

            cell: dict = {"ack": 0.0}

            def submit_fn(now, key=key, value=value, cell=cell):
                future, _request, ack = client.submit_put_raw(
                    TABLE, key, GROUP, value, arrival=now
                )
                cell["ack"] = ack
                return future

            try:
                future = yield Submit(submit_fn)
            except LogBaseError:
                # The submission never reached the coordinator; still
                # conservative — routing may race failover mid-call.
                oracle.record(key, seq, WriteStatus.INDETERMINATE)
                rescue(client)
                continue
            yield Advance(cell["ack"])
            if future.error is None:
                oracle.record(key, seq, WriteStatus.ACKED)
            else:
                # The member's group died mid-flush: it must never have
                # been acked, but parts of it may or may not be durable.
                oracle.record(key, seq, WriteStatus.INDETERMINATE)
                rescue(client)

    scheduler = ConcurrentScheduler()
    for server in db.cluster.servers:
        scheduler.add_coordinator(server.commit)
    start = db.cluster.elapsed_makespan()
    with fault_plan(plan):
        for i in range(n_clients):
            scheduler.add_client(chaos_client(i), at=start)
        scheduler.run()
        # Failover may have installed fresh coordinators (restart swaps
        # them); flush anything a non-scheduler path left open.
        for server in db.cluster.servers:
            if server.commit is not None and server.machine.alive:
                server.commit.drain()

    # -- recovery: restart the dead, let repair finish --------------------
    config.network.partitions.heal()
    for name in list(db.cluster.failures.killed):
        db.cluster.restart_server(name)
        report.restarted_servers.append(name)
    for _ in range(2):
        db.cluster.heartbeat()

    # -- verification -----------------------------------------------------
    verifier = db.client(db.cluster.machines[-1])
    report.violations.extend(
        oracle.verify(lambda key: verifier.get_raw(TABLE, key, GROUP))
    )
    counts = oracle.counts()
    report.acked = counts["acked"]
    report.aborted = counts["aborted"]
    report.indeterminate = counts["indeterminate"]
    report.faults_fired = len(plan.fired)
    report.keys_checked = len(oracle.keys)
    totals = db.cluster.total_counters()
    groups = totals.get(COMMIT_GROUPS, 0)
    report.groups = int(groups)
    report.mean_fanin = (
        totals.get(COMMIT_GROUP_FANIN, 0) / groups if groups else 0.0
    )
    report.acks_deferred = int(totals.get(COMMIT_ACKS_DEFERRED, 0))
    return report
