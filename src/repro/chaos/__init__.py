"""Chaos testing: seeded fault schedules with a durability oracle.

The harness (:mod:`repro.chaos.runner`) drives a seeded write/read
workload against a full cluster while a :class:`~repro.sim.failure.FaultPlan`
kills nodes at instrumented crash points, partitions the network, and
revives machines mid-run.  A :class:`~repro.chaos.oracle.DurabilityOracle`
tracks the fate the client observed for every write and, after recovery,
verifies the paper's durability contract: every acknowledged write is
readable, no cleanly-aborted write is visible, and indeterminate commits
are atomic (all-or-nothing).
"""

from repro.chaos.gray import GRAY_SCHEDULES, GraySchedule, run_gray
from repro.chaos.migration import (
    MIGRATION_SCENARIOS,
    MigrationChaosReport,
    check_single_owner,
    run_migration_chaos,
)
from repro.chaos.oracle import DurabilityOracle, WriteStatus
from repro.chaos.recovery import (
    RECOVERY_SCENARIOS,
    RecoveryChaosReport,
    run_recovery_chaos,
)
from repro.chaos.replica import (
    REPLICA_SCENARIOS,
    ReplicaChaosReport,
    StalenessChecker,
    run_replica_chaos,
)
from repro.chaos.runner import ChaosReport, run_chaos
from repro.chaos.schedules import SCHEDULES, ChaosSchedule

__all__ = [
    "ChaosReport",
    "ChaosSchedule",
    "DurabilityOracle",
    "GRAY_SCHEDULES",
    "GraySchedule",
    "MIGRATION_SCENARIOS",
    "MigrationChaosReport",
    "RECOVERY_SCENARIOS",
    "REPLICA_SCENARIOS",
    "RecoveryChaosReport",
    "ReplicaChaosReport",
    "SCHEDULES",
    "StalenessChecker",
    "WriteStatus",
    "check_single_owner",
    "run_chaos",
    "run_gray",
    "run_migration_chaos",
    "run_recovery_chaos",
    "run_replica_chaos",
]
