"""Named fault schedules the chaos runner executes.

A schedule contributes two kinds of disruption:

* **fault rules** installed into a :class:`~repro.sim.failure.FaultPlan`
  — they fire *inside* instrumented operations (mid-append, at commit,
  mid-checkpoint, mid-compaction) and model a process dying at the worst
  possible moment;
* **events** keyed by workload operation index — they run *between*
  operations and model environmental changes (network partitions
  forming and healing, operators restarting machines, rebalances).

Every schedule here targets the standard chaos topology built by the
runner: 4 nodes, the ``chaos`` table placed on ``ts-node-0`` and
``ts-node-1`` only, the workload client on ``node-2`` — so ``node-3``
is a pure datanode from the workload's point of view and killing it
stresses replication without moving tablets, while killing ``node-0``
or ``node-1`` forces tablet failover on top of replica loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import ServerDownError
from repro.sim.failure import (
    CP_CHECKPOINT_MID,
    CP_COMPACTION_MID,
    CP_DFS_APPEND,
    CP_TXN_POST_COMMIT,
    CP_TXN_PRE_COMMIT,
    FaultPlan,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.database import LogBase

Events = dict[int, Callable[[], None]]


@dataclass(frozen=True)
class ChaosSchedule:
    """One named chaos scenario.

    Attributes:
        name: registry key (CLI argument of the chaos bench).
        description: what the scenario stresses.
        install: given the database and a fresh plan, add fault rules and
            return the operation-indexed event map.
    """

    name: str
    description: str
    install: Callable[["LogBase", FaultPlan], Events]


def _kill(db: "LogBase", server_name: str, *, raise_down: bool = False):
    """Action: power-fail ``server_name``'s whole machine (tablet server
    *and* datanode; in-memory state lost), optionally raising
    ``ServerDownError`` so the crash interrupts the instrumented call."""

    def action(_ctx) -> None:
        db.cluster.kill_node(server_name)
        if raise_down:
            raise ServerDownError(f"{server_name} crashed")

    return action


def _datanode_mid_append(db: "LogBase", plan: FaultPlan) -> Events:
    # node-3 holds replicas but no chaos tablets: its death mid-pipeline
    # must be absorbed by pipeline recovery, never surface to the client.
    plan.add(CP_DFS_APPEND, _kill(db, "ts-node-3"), hits=6)
    return {}


def _server_crash_at_commit(db: "LogBase", plan: FaultPlan) -> Events:
    # First: a commit dies *before* its commit record is durable (the
    # transaction must stay invisible).  Later: one dies *after* (commit
    # durable but unapplied; redo on the adopter must surface it).
    plan.add(
        CP_TXN_PRE_COMMIT, _kill(db, "ts-node-1", raise_down=True),
        server="ts-node-1",
    )
    plan.add(
        CP_TXN_POST_COMMIT, _kill(db, "ts-node-0", raise_down=True),
        server="ts-node-0",
    )
    return {}


def _crash_during_checkpoint(db: "LogBase", plan: FaultPlan) -> Events:
    # Dies between index-file flushes: the previous checkpoint block must
    # stay the recovery point (the block write is the commit point).
    plan.add(
        CP_CHECKPOINT_MID, _kill(db, "ts-node-1", raise_down=True),
        server="ts-node-1",
    )
    return {}


def _crash_during_compaction(db: "LogBase", plan: FaultPlan) -> Events:
    # Dies after writing sorted runs but before retiring the inputs: all
    # data must remain readable through the old segments.
    plan.add(
        CP_COMPACTION_MID, _kill(db, "ts-node-1", raise_down=True),
        machine="node-1",
    )
    return {}


def _partition_heal(db: "LogBase", plan: FaultPlan) -> Events:
    partitions = db.cluster.config.network.partitions
    return {
        8: lambda: partitions.isolate("node-3"),
        30: partitions.heal,
    }


def _kill_revive_readopt(db: "LogBase", plan: FaultPlan) -> Events:
    def revive() -> None:
        db.cluster.restart_server("ts-node-1")
        db.cluster.master.rebalance()

    return {
        10: lambda: db.cluster.kill_node("ts-node-1"),
        35: revive,
    }


SCHEDULES: dict[str, ChaosSchedule] = {
    schedule.name: schedule
    for schedule in (
        ChaosSchedule(
            "datanode-mid-append",
            "datanode dies mid replication pipeline; writes keep flowing",
            _datanode_mid_append,
        ),
        ChaosSchedule(
            "server-crash-at-commit",
            "tablet servers die before and after the commit record",
            _server_crash_at_commit,
        ),
        ChaosSchedule(
            "crash-during-checkpoint",
            "server dies between checkpoint index flushes",
            _crash_during_checkpoint,
        ),
        ChaosSchedule(
            "crash-during-compaction",
            "server dies after compaction reduce, before install",
            _crash_during_compaction,
        ),
        ChaosSchedule(
            "partition-heal",
            "datanode partitioned away, then healed and re-replicated",
            _partition_heal,
        ),
        ChaosSchedule(
            "kill-revive-readopt",
            "node killed, failed over, revived, and rebalanced back in",
            _kill_revive_readopt,
        ),
    )
}
