"""Gray-failure chaos: schedules where nodes limp instead of dying.

Fail-stop chaos (:mod:`repro.chaos.schedules`) kills processes; gray
chaos degrades them — a disk that serves every request forty times
slower, a network link crawling under retransmits, a server drowning in
a request burst.  Nothing crashes, heartbeats keep succeeding, so
fail-stop detection (session expiry, auto-failover) never triggers and
only the gray-resilience layer — deadlines, hedged replica reads,
circuit breakers, admission control — can keep tail latency bounded.

Every schedule targets the standard chaos topology (4 nodes, the table
homed on ``ts-node-0``/``ts-node-1``, the workload client on ``node-2``).
Because tablet servers prefer their *local* replica, degrading a home
node's disk is what puts a limping replica on the read path.

:func:`run_gray` executes one schedule through the shared chaos runner
with the server read cache disabled on *both* arms — otherwise the
read buffer absorbs the workload's reads and the limping DFS replica
is never exercised — so the mitigated/unmitigated comparison isolates
the gray-resilience machinery itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.chaos.runner import ChaosReport, run_chaos
from repro.chaos.schedules import Events
from repro.config import LogBaseConfig
from repro.errors import LogBaseError
from repro.sim.failure import CP_DFS_APPEND, FaultPlan, link_limp_action

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.database import LogBase

#: disk slowdown factor for limping nodes — large enough that an
#: unmitigated read off the limping replica dominates the latency tail.
LIMP_FACTOR = 40.0

#: link slowdown factor for the degraded replication pipeline link.
LINK_FACTOR = 60.0

#: latency SLO targets (simulated seconds) for *monitored* gray runs,
#: placed just above the slowest op any clean gray arm produces (clean
#: puts top out at ~51ms, clean gets at ~63ms even with hedging and
#: deadlines disabled) so a clean run has *zero* SLO-violating samples,
#: while a x60 link slowdown pushes puts past 120ms and fires the
#: burn-rate alert.
GRAY_SLO_TARGETS = {"op.put": 0.06, "op.get": 0.07}

#: burn-rate threshold for monitored gray runs: with a 0.99 objective
#: this fires once >8% of windowed ops violate their target — between
#: the 0% of every clean arm and the ~15% a degraded link inflicts.
GRAY_SLO_BURN_THRESHOLD = 8.0


@dataclass(frozen=True)
class GraySchedule:
    """One named gray-failure scenario.

    Attributes:
        name: registry key (CLI argument of the gray chaos bench).
        description: what the scenario stresses.
        install: given the database and a fresh plan, add fault rules and
            return the operation-indexed event map.
        overrides: config overrides applied on top of
            :meth:`LogBaseConfig.with_gray_resilience` for the mitigated
            arm — how a schedule narrows the run to one mechanism (e.g.
            the overload burst turns hedging and breakers off so only
            admission control is in play).
    """

    name: str
    description: str
    install: Callable[["LogBase", FaultPlan], Events]
    overrides: dict = field(default_factory=dict)


def _limp(db: "LogBase", server_name: str, factor: float):
    """Event: put ``server_name``'s disk in degraded mode (1.0 heals)."""

    def event() -> None:
        db.cluster.failures.degrade(server_name, factor)

    return event


def _mid_limp_scan(db: "LogBase"):
    """Event: a range scan issued while the home replica is limping —
    the scan's coalesced DFS reads all face the limping-or-hedge choice."""

    def event() -> None:
        from repro.chaos.runner import GROUP, TABLE

        client = db.client(db.cluster.machines[2])
        try:
            client.scan_raw(TABLE, GROUP, b"0" * 12, b"9" * 12)
        except LogBaseError:
            pass  # scan outcome is judged by latency, not success

    return event


def _limp_datanode_mid_scan(db: "LogBase", plan: FaultPlan) -> Events:
    # The full stack on defaults: node-0 (a table home) limps for most of
    # the run, a scan lands mid-limp, reads must hedge around the slow
    # replica and breakers must stop re-trying it.
    return {
        8: _limp(db, "ts-node-0", LIMP_FACTOR),
        25: _mid_limp_scan(db),
        48: _limp(db, "ts-node-0", 1.0),
    }


def _slow_link_replication(db: "LogBase", plan: FaultPlan) -> Events:
    # The node-0 <-> node-3 link crawls starting *inside* a replication
    # pipeline append (a fault rule, not an event): pipeline acks crossing
    # that link charge the degraded transfer cost, yet writes must keep
    # flowing and every acked write must survive verification.
    links = db.cluster.config.network.links
    plan.add(
        CP_DFS_APPEND,
        link_limp_action(links, "node-0", "node-3", LINK_FACTOR),
        hits=4,
    )
    return {
        45: lambda: links.slow("node-0", "node-3", 1.0),
    }


def _overload_burst(db: "LogBase", plan: FaultPlan) -> Events:
    # A foreign client bursts writes at the cluster, racing the home
    # servers' clocks ahead of the workload client's.  With hedging,
    # breakers and deadlines all disabled (see overrides), only the
    # admission controller stands between the backlog and the workload:
    # it must shed with a retry-after that re-admits after one wait.
    def burst() -> None:
        from repro.chaos.runner import GROUP, TABLE

        client = db.client(db.cluster.machines[3])
        for i in range(40):
            key = f"burst-{i:07d}".encode().rjust(12, b"0")
            try:
                client.put_raw(TABLE, key, GROUP, b"x" * 64)
            except LogBaseError:
                pass

    return {12: burst}


def _limp_trip_recover(db: "LogBase", plan: FaultPlan) -> Events:
    # Full gray lifecycle on one node: node-1 limps, its breakers trip
    # (short cooldown so the run can witness it), the node heals, a
    # half-open probe succeeds and the breakers close again — the node
    # must end the run back in the serving rotation.
    return {
        6: _limp(db, "ts-node-1", LIMP_FACTOR),
        30: _limp(db, "ts-node-1", 1.0),
    }


def _hedge_under_limp(db: "LogBase", plan: FaultPlan) -> Events:
    # Breakers off (see overrides): every read of the limping replica
    # must be saved by the hedge alone, so the hedge-win counter is the
    # whole story.
    return {
        5: _limp(db, "ts-node-0", LIMP_FACTOR),
        50: _limp(db, "ts-node-0", 1.0),
    }


GRAY_SCHEDULES: dict[str, GraySchedule] = {
    schedule.name: schedule
    for schedule in (
        GraySchedule(
            "limp-datanode-mid-scan",
            "home replica's disk limps x40 through a mid-run range scan",
            _limp_datanode_mid_scan,
        ),
        GraySchedule(
            "slow-link-replication",
            "node-0<->node-3 link degrades inside a replication pipeline",
            _slow_link_replication,
        ),
        GraySchedule(
            "overload-burst",
            "write burst overloads home servers; admission control sheds",
            _overload_burst,
            overrides={
                "hedge_reads": False,
                "breaker_enabled": False,
                "op_deadline": None,
                "admission_queue_depth": 8,
            },
        ),
        GraySchedule(
            "limp-trip-recover",
            "node limps, breakers trip, node heals, breakers close",
            _limp_trip_recover,
            overrides={
                "breaker_cooldown": 0.05,
                "breaker_min_samples": 2,
            },
        ),
        GraySchedule(
            "hedge-under-limp",
            "breakers disabled: hedged reads alone cover the limping replica",
            _hedge_under_limp,
            overrides={"breaker_enabled": False},
        ),
    )
}


def run_gray(
    scenario: str,
    seed: int = 1,
    ops: int = 60,
    *,
    resilience: bool = True,
    monitoring: bool = False,
) -> ChaosReport:
    """Execute one gray scenario through the chaos runner.

    Args:
        scenario: key into :data:`GRAY_SCHEDULES`.
        seed: workload RNG seed.
        ops: workload operations before recovery + verification.
        resilience: True runs the mitigated arm
            (:meth:`LogBaseConfig.with_gray_resilience` plus the
            schedule's overrides); False runs the unmitigated control
            (:meth:`LogBaseConfig.with_fault_tolerance`) under the same
            fault plan, for tail-latency comparison.
        monitoring: layer the monitoring plane (and tracing, which the
            SLO burn-rate rules need for their latency histograms) on
            top of the chosen arm; the report then carries the alert log
            and flight-recorder post-mortems.

    Both arms disable the server read cache so workload reads actually
    reach the DFS replicas the schedules degrade.
    """
    schedule = GRAY_SCHEDULES[scenario]
    common: dict = {"segment_size": 64 * 1024, "read_cache_enabled": False}
    if monitoring:
        common.update(
            {
                "monitoring": True,
                "monitor_scrape_interval": 0.0,  # detection fidelity
                "tracing": True,
                "slo_op_p99": dict(GRAY_SLO_TARGETS),
                "slo_burn_threshold": GRAY_SLO_BURN_THRESHOLD,
            }
        )
    if resilience:
        config = LogBaseConfig.with_gray_resilience(
            **common, **schedule.overrides
        )
    else:
        config = LogBaseConfig.with_fault_tolerance(**common)
    return run_chaos(
        scenario,
        seed,
        ops,
        config=config,
        schedules=GRAY_SCHEDULES,
    )
