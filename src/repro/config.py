"""Configuration knobs for a LogBase deployment.

Defaults follow the paper's experimental setup (§4.1): 64 MB log segments
and DFS blocks, 3-way replication, 40 % of a 4 GB heap for in-memory
indexes, 20 % for the read cache.  Record counts are scaled down for the
simulation; byte *sizes* are kept at paper scale so cost accounting
matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.disk import DiskModel
from repro.sim.network import NetworkModel

GiB = 1024 * 1024 * 1024
MiB = 1024 * 1024


@dataclass
class LogBaseConfig:
    """Tunable parameters for cluster, servers and storage.

    Attributes:
        replication: DFS synchronous replication factor.
        dfs_block_size: DFS block size in bytes.
        segment_size: log segment roll size in bytes.
        heap_bytes: simulated tablet-server heap.
        index_heap_fraction: share of heap reserved for in-memory indexes.
        cache_heap_fraction: share of heap for the read cache.
        checkpoint_update_threshold: updates per column group between
            automatic index flushes (0 disables automatic checkpoints).
        read_cache_enabled: whether servers keep a read buffer at all
            (it is "only an optional component", §3.6.2).
        group_commit_batch: max records buffered per group-commit flush.
        index_kind: ``"blink"`` (in-memory) or ``"lsm"`` (spill to DFS).
        max_versions: versions kept per key by compaction (None = all).
        disk: device cost model for every machine.
        network: cluster interconnect cost model.
        racks: number of racks machines are spread over.
    """

    replication: int = 3
    dfs_block_size: int = 64 * MiB
    segment_size: int = 64 * MiB
    heap_bytes: int = 4 * GiB
    index_heap_fraction: float = 0.40
    cache_heap_fraction: float = 0.20
    checkpoint_update_threshold: int = 0
    read_cache_enabled: bool = True
    group_commit_batch: int = 16
    index_kind: str = "blink"
    max_versions: int | None = None
    disk: DiskModel = field(default_factory=DiskModel)
    network: NetworkModel = field(default_factory=NetworkModel)
    racks: int = 2

    @property
    def index_budget_bytes(self) -> int:
        """Heap bytes available for in-memory indexes."""
        return int(self.heap_bytes * self.index_heap_fraction)

    @property
    def cache_budget_bytes(self) -> int:
        """Heap bytes available for the read cache."""
        return int(self.heap_bytes * self.cache_heap_fraction)

    def validate(self) -> None:
        """Raise ValueError on inconsistent settings."""
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if not 0.0 <= self.index_heap_fraction + self.cache_heap_fraction <= 1.0:
            raise ValueError("heap fractions exceed the heap")
        if self.index_kind not in ("blink", "lsm"):
            raise ValueError(f"unknown index kind {self.index_kind!r}")
        if self.max_versions is not None and self.max_versions < 1:
            raise ValueError("max_versions must be >= 1 or None")
