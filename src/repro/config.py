"""Configuration knobs for a LogBase deployment.

Defaults follow the paper's experimental setup (§4.1): 64 MB log segments
and DFS blocks, 3-way replication, 40 % of a 4 GB heap for in-memory
indexes, 20 % for the read cache.  Record counts are scaled down for the
simulation; byte *sizes* are kept at paper scale so cost accounting
matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.disk import DiskModel
from repro.sim.network import NetworkModel

GiB = 1024 * 1024 * 1024
MiB = 1024 * 1024


@dataclass
class LogBaseConfig:
    """Tunable parameters for cluster, servers and storage.

    Attributes:
        replication: DFS synchronous replication factor.
        dfs_block_size: DFS block size in bytes.
        segment_size: log segment roll size in bytes.
        heap_bytes: simulated tablet-server heap.
        index_heap_fraction: share of heap reserved for in-memory indexes.
        cache_heap_fraction: share of heap for the read cache.
        checkpoint_update_threshold: updates per column group between
            automatic index flushes (0 disables automatic checkpoints).
        read_cache_enabled: whether servers keep a read buffer at all
            (it is "only an optional component", §3.6.2).
        block_cache_enabled: whether each machine keeps an LRU cache of
            block-sized chunks between the DFS reader and the simulated
            disk.  Off by default so the seed Fig. 6-10 cost-model results
            are reproduced exactly; enable it (or use
            :meth:`with_read_pipeline`) for the hot read path.
        block_cache_heap_fraction: share of heap for the DFS block cache.
        block_cache_chunk: bytes per cached chunk (the unit of cache fill
            and eviction; one miss reads one chunk from the datanode).
        read_coalesce_gap: ``None`` disables batch-read coalescing (seed
            behaviour: one DFS read per pointer).  Otherwise, pointers
            sorted by offset whose gap is at most this many bytes are
            merged into a single DFS read by ``LogRepository.read_many``.
        read_batch_size: index entries fetched per ``read_many`` window
            during range scans (only used when coalescing is enabled).
        scan_prefetch_bytes: read-ahead window for sequential segment
            scans; 0 reads the whole segment in one request (seed
            behaviour), a positive value streams the scan in windows of
            this many bytes.
        group_commit_batch: max records buffered per group-commit flush.
        group_commit: run tablet-server writes through the commit
            coordinator (:mod:`repro.wal.group_commit`): appends arriving
            while a flush is in flight join an open group (leader/follower),
            the whole group lands with one ``append_batch`` — one DFS
            replication round trip — and every member is acked on group
            durability.  Off by default so the seed figures are reproduced
            byte-identically; :meth:`with_group_commit` enables it.
        group_commit_max_delay: how long (simulated seconds) a group
            leader waits for followers before sealing its group.
        group_commit_max_bytes: byte budget per commit group (estimated
            record sizes); None removes the cap and only
            ``group_commit_batch`` bounds the group.
        group_commit_pipeline: start replicating the next group while the
            previous group's acks drain back up the pipeline; members are
            still acked only at their own group's ack-drain time.
        dfs_checksum_replicas: datanodes keep an incremental CRC-32C per
            replica (needed for read-path corruption detection).
        dfs_verify_reads: checksum-verify a replica before serving a read
            from it; on mismatch the reader fails over to another replica
            instead of returning bad bytes.  Requires
            ``dfs_checksum_replicas``.
        dfs_auto_rereplicate: the cluster heartbeat runs the namenode's
            background re-replication pass over blocks the pipeline or
            read path reported under-replicated.
        dfs_degraded_allocation: allocate new blocks on however many
            datanodes are live (queued for repair) instead of refusing
            writes when fewer than ``replication`` survive.
        client_retry_limit: times a client retries an operation that hit
            a dead server (with backoff), instead of raising immediately.
            0 keeps the seed behaviour: invalidate the cache and raise.
        client_retry_backoff: simulated seconds charged to the client
            before the first retry; doubles per attempt.
        client_retry_backoff_max: cap on one backoff wait — the doubling
            stops growing here instead of running away exponentially.
        gray_resilience: master gate for the gray-failure resilience
            layer (deadlines, hedged reads, circuit breakers, admission
            control).  Off by default so the seed figures are reproduced
            byte-identically; :meth:`with_gray_resilience` enables it.
        op_deadline: per-operation time budget in simulated seconds the
            client attaches to every call (None disables deadlines).
            Propagated server-side; deadline-aware read paths raise
            ``DeadlineExceededError`` instead of charging past it.
        hedge_reads: DFS readers fire a hedge to a second replica when
            the preferred replica's estimated cost exceeds the hedging
            delay, and take the cheaper completion.
        hedge_quantile: hedging delay as a multiple of the EWMA read
            latency (approximates "hedge past the p9x latency").
        hedge_min_delay: floor for the hedging delay in seconds
            (kept above a healthy random access so cold monitors never
            hedge ordinary reads).
        breaker_enabled: trip per-node circuit breakers on EWMA latency
            and bias routing away from open (limping) nodes.
        breaker_trip_seconds: EWMA latency that opens a breaker.
        breaker_cooldown: seconds an open breaker waits before letting a
            half-open probe through.
        breaker_min_samples: observations before a breaker may trip.
        admission_queue_depth: bounded in-flight queue per tablet server,
            in EWMA service times; requests past it are shed with
            ``ServerOverloadedError`` + retry-after (None disables).
        incremental_compaction: replace the one-shot full compaction with
            the size-tiered planner: unsorted tail segments are always
            eligible, sorted runs only merge when a tier accumulates
            enough similar-sized runs, and only the touched (table,
            group) indexes are swapped.  Off by default so the seed
            figures are reproduced byte-identically;
            :meth:`with_incremental_compaction` enables it.
        compaction_tier_fanout: sorted runs of one (table, group) merge
            only when at least this many similar-sized runs have
            accumulated in a size tier (the size-tiered trigger).
        compaction_max_input_bytes: I/O budget per compaction plan —
            a plan stops adding input segments past this many bytes
            (None removes the cap).
        fast_recovery: restart recovery partitions the redo scan per
            tablet and multiplexes per-tablet redo workers over the
            virtual-time scheduler, bringing tablets back to serving in
            access-heat order the moment their own redo completes; ops on
            still-recovering tablets are rejected with a retryable
            ``TabletRecoveringError``.  Off by default so the seed
            figures (fig18's sequential recovery included) are reproduced
            byte-identically; :meth:`with_fast_recovery` enables it.
        recovery_workers: parallel redo workers (scan + per-tablet
            bring-up lanes) a fast recovery multiplexes over the
            scheduler.
        live_migration: enable the live-migration subsystem
            (:mod:`repro.core.migration`): lease-based tablet ownership
            (renewed by the cluster heartbeat, checked on every client-
            facing op), the prepare/catch-up/fenced-flip state machine
            with its intent persisted in znodes, hot-tablet splitting at
            the median observed key, and the master-side heat balancer.
            Off by default so the seed figures are reproduced
            byte-identically; :meth:`with_live_migration` enables it.
        migration_lease_seconds: ownership lease TTL in simulated
            seconds.  A server whose lease lapsed (it was partitioned or
            paused and the heartbeat could not renew) rejects ops with
            ``TabletMigratingError`` instead of double-serving; a fenced
            flip against an unreachable owner must wait out at most this
            long.
        migration_flip_budget: acceptance bound (simulated seconds) on
            one migration's fenced-flip window — the only unavailability
            a live migration may cause.  Benchmarks assert flip p99 stays
            under it.
        balancer_skew_threshold: the balancer acts when the hottest
            server's heat exceeds the coldest's by this factor.
        balancer_split_fraction: a tablet carrying at least this share of
            its server's heat is split (its hotspot cannot be fixed by
            moving the whole tablet) instead of migrated.
        heat_half_life: half-life in simulated seconds for decaying the
            master-side ``tablet_heat`` of tablets that are no longer in
            the catalog's assignments (deleted or replaced by a split) —
            the balancer must never chase a ghost hotspot.
        read_replicas: enable log-shipping read replicas
            (:mod:`repro.core.follower`): non-owner servers tail the
            owner's log segments straight from the replicated DFS,
            maintain their own multiversion indexes, and serve
            bounded-staleness reads; the client spreads read traffic
            across followers and falls back to the owner on
            ``FollowerLaggingError``.  Off by default so the seed figures
            are reproduced byte-identically; :meth:`with_read_replicas`
            enables it.
        replicas_per_tablet: followers the master places per tablet (on
            distinct non-owner servers; capped by cluster size).
        replica_max_staleness: default per-read staleness bound in
            simulated seconds — a follower whose watermark is older than
            the owner's last-commit time minus this bound rejects the
            read with ``FollowerLaggingError`` (per-request override via
            the client API).
        replica_tail_batch: max log records a follower applies per tail
            pass (bounds one heartbeat's catch-up work; lag beyond it is
            worked off over subsequent passes).
        replica_read_fraction: share of eligible reads the client routes
            to followers (1.0 = all reads try a follower first); writes
            and historical ``as_of`` reads below the watermark still go
            wherever correctness requires.
        tracing: install a :class:`~repro.obs.trace.Tracer` on the
            cluster and open spans at every gated entry point (client
            ops, tablet-server calls, compaction, recovery), attributing
            each charged simulated second to the innermost open span.
            Off by default so the seed figures are reproduced
            byte-identically; :meth:`with_tracing` enables it.
        trace_ring: closed traces retained in the tracer's ring buffer.
        trace_slow_samples: worst traces kept per operation type.
        monitoring: install a :class:`~repro.obs.monitor.ClusterMonitor`
            on the cluster: every heartbeat scrapes per-machine counter
            deltas and derived health gauges into ring-buffer time
            series, evaluates the SLO/alert rules in simulated time, and
            snapshots flight-recorder post-mortems on alert fire or any
            observed fault.  Off by default so the seed figures are
            reproduced byte-identically; :meth:`with_monitoring` enables
            it.  Pure bookkeeping — no simulated cost either way.
        monitor_ring: samples retained per (entity, metric) time series.
        monitor_recorder_ring: events retained per node by the flight
            recorder.
        monitor_postmortems: post-mortem bundles retained per run
            (overflow keeps the oldest — the incident's first snapshot).
        monitor_series_tail: newest samples per series included in a
            post-mortem bundle.
        monitor_scrape_interval: minimum *simulated* seconds between
            scrape ticks — the production-style cadence that keeps the
            enabled gate's wall-clock overhead bounded.  ``0.0`` scrapes
            on every heartbeat (what the chaos detection oracle uses for
            maximum fidelity).
        slo_op_p99: per-op-class latency SLO targets in simulated
            seconds, e.g. ``{"op.put": 0.25}`` — each entry adds a
            burn-rate alert computed from the PR 6 latency histograms
            (requires ``tracing`` for the histograms to exist).
        slo_objective: fraction of ops that must meet the target (0.99 =
            p99 objective; 0.999 = availability-style, more nines).
        slo_burn_threshold: burn-rate multiple that fires the SLO alert
            (1.0 = burning budget exactly at the allowed rate).
        slo_window: lookback window in simulated seconds for burn rates.
        slo_min_samples: ops observed in the window before an SLO rule
            may fire (suppresses noise on near-empty histograms).
        index_kind: ``"blink"`` (in-memory) or ``"lsm"`` (spill to DFS).
        max_versions: versions kept per key by compaction (None = all).
        disk: device cost model for every machine.
        network: cluster interconnect cost model.
        racks: number of racks machines are spread over.
    """

    replication: int = 3
    dfs_block_size: int = 64 * MiB
    segment_size: int = 64 * MiB
    heap_bytes: int = 4 * GiB
    index_heap_fraction: float = 0.40
    cache_heap_fraction: float = 0.20
    checkpoint_update_threshold: int = 0
    read_cache_enabled: bool = True
    block_cache_enabled: bool = False
    block_cache_heap_fraction: float = 0.10
    block_cache_chunk: int = 64 * 1024
    read_coalesce_gap: int | None = None
    read_batch_size: int = 256
    scan_prefetch_bytes: int = 0
    group_commit_batch: int = 16
    group_commit: bool = False
    group_commit_max_delay: float = 0.002
    group_commit_max_bytes: int | None = None
    group_commit_pipeline: bool = True
    dfs_checksum_replicas: bool = False
    dfs_verify_reads: bool = False
    dfs_auto_rereplicate: bool = False
    dfs_degraded_allocation: bool = False
    client_retry_limit: int = 0
    client_retry_backoff: float = 0.05
    client_retry_backoff_max: float = 30.0
    gray_resilience: bool = False
    op_deadline: float | None = None
    hedge_reads: bool = False
    hedge_quantile: float = 3.0
    hedge_min_delay: float = 0.05
    breaker_enabled: bool = False
    breaker_trip_seconds: float = 0.1
    breaker_cooldown: float = 2.0
    breaker_min_samples: int = 3
    admission_queue_depth: int | None = None
    fast_recovery: bool = False
    recovery_workers: int = 4
    incremental_compaction: bool = False
    compaction_tier_fanout: int = 4
    compaction_max_input_bytes: int | None = None
    live_migration: bool = False
    migration_lease_seconds: float = 0.5
    migration_flip_budget: float = 2.0
    balancer_skew_threshold: float = 2.0
    balancer_split_fraction: float = 0.6
    heat_half_life: float = 60.0
    read_replicas: bool = False
    replicas_per_tablet: int = 1
    replica_max_staleness: float = 5.0
    replica_tail_batch: int = 512
    replica_read_fraction: float = 1.0
    tracing: bool = False
    trace_ring: int = 512
    trace_slow_samples: int = 4
    monitoring: bool = False
    monitor_ring: int = 256
    monitor_recorder_ring: int = 64
    monitor_postmortems: int = 8
    monitor_series_tail: int = 32
    monitor_scrape_interval: float = 0.05
    slo_op_p99: dict = field(default_factory=dict)
    slo_objective: float = 0.99
    slo_burn_threshold: float = 10.0
    slo_window: float = 30.0
    slo_min_samples: int = 5
    index_kind: str = "blink"
    max_versions: int | None = None
    disk: DiskModel = field(default_factory=DiskModel)
    network: NetworkModel = field(default_factory=NetworkModel)
    racks: int = 2

    @property
    def index_budget_bytes(self) -> int:
        """Heap bytes available for in-memory indexes."""
        return int(self.heap_bytes * self.index_heap_fraction)

    @property
    def cache_budget_bytes(self) -> int:
        """Heap bytes available for the read cache."""
        return int(self.heap_bytes * self.cache_heap_fraction)

    @property
    def block_cache_budget_bytes(self) -> int:
        """Heap bytes available for the per-machine DFS block cache."""
        return int(self.heap_bytes * self.block_cache_heap_fraction)

    @classmethod
    def with_read_pipeline(cls, **overrides) -> "LogBaseConfig":
        """A config with the full log read pipeline enabled: DFS block
        cache, pointer-coalesced batch reads, and scan prefetch.

        The defaults of the plain constructor keep all three off so the
        seed benchmarks reproduce the paper's cost model unchanged; this
        preset is the production-leaning configuration the hot-path
        benchmarks (``bench_hotpath_read``) measure.
        """
        settings: dict = {
            "block_cache_enabled": True,
            "read_coalesce_gap": 64 * 1024,
            "scan_prefetch_bytes": 1 * MiB,
        }
        settings.update(overrides)
        return cls(**settings)

    @classmethod
    def with_fault_tolerance(cls, **overrides) -> "LogBaseConfig":
        """A config with the fault-tolerance layer enabled: replica
        checksums with verified, failing-over reads; heartbeat-driven
        background re-replication; and client retries over failover.

        The plain constructor keeps all of it off so the seed cost model
        and figures are reproduced byte-identically; this preset is what
        the chaos harness (``repro.chaos``) runs under.
        """
        settings: dict = {
            "dfs_checksum_replicas": True,
            "dfs_verify_reads": True,
            "dfs_auto_rereplicate": True,
            "dfs_degraded_allocation": True,
            "client_retry_limit": 3,
        }
        settings.update(overrides)
        return cls(**settings)

    @classmethod
    def with_gray_resilience(cls, **overrides) -> "LogBaseConfig":
        """A config with the gray-failure resilience layer enabled on top
        of the fault-tolerance layer: per-operation deadlines, hedged DFS
        replica reads, latency circuit breakers, and tablet-server
        admission control.

        The plain constructor keeps all of it off so the seed cost model
        and figures are reproduced byte-identically; this preset is what
        the gray chaos schedules (``repro.chaos.gray``) run under.
        """
        settings: dict = {
            "dfs_checksum_replicas": True,
            "dfs_verify_reads": True,
            "dfs_auto_rereplicate": True,
            "dfs_degraded_allocation": True,
            "client_retry_limit": 4,
            "gray_resilience": True,
            "op_deadline": 1.0,
            "hedge_reads": True,
            "breaker_enabled": True,
            "admission_queue_depth": 64,
        }
        settings.update(overrides)
        return cls(**settings)

    @classmethod
    def with_fast_recovery(cls, **overrides) -> "LogBaseConfig":
        """A config with the fast-recovery subsystem enabled on top of
        the fault-tolerance layer: parallel per-tablet redo over the
        virtual-time scheduler, hot-first tablet bring-up with
        serve-while-recovering (``TabletRecoveringError`` honored by the
        client's retry backoff), and crash-safe split/adopt handoff.

        The plain constructor keeps it off so the seed cost model and
        figures (fig18's sequential recovery included) are reproduced
        byte-identically; this preset is what the recovery benchmark
        (``bench_recovery``) and recovery chaos schedules measure.
        """
        settings: dict = {
            "dfs_checksum_replicas": True,
            "dfs_verify_reads": True,
            "dfs_auto_rereplicate": True,
            "dfs_degraded_allocation": True,
            "client_retry_limit": 3,
            "fast_recovery": True,
        }
        settings.update(overrides)
        return cls(**settings)

    @classmethod
    def with_live_migration(cls, **overrides) -> "LogBaseConfig":
        """A config with the live-migration subsystem enabled on top of
        the fault-tolerance layer: lease-based tablet ownership, the
        prepare/catch-up/fenced-flip migration state machine (intent in
        znodes, fence epochs against stale owners), hot-tablet splitting
        and the heat balancer.  Ops that land in a flip window get the
        retryable ``TabletMigratingError``, which the client honors by
        invalidating its location cache and backing off.

        The plain constructor keeps it off so the seed cost model and
        figures are reproduced byte-identically; this preset is what the
        elasticity benchmark (``bench_migration``) and migration chaos
        schedules run under.
        """
        settings: dict = {
            "dfs_checksum_replicas": True,
            "dfs_verify_reads": True,
            "dfs_auto_rereplicate": True,
            "dfs_degraded_allocation": True,
            "client_retry_limit": 4,
            "live_migration": True,
        }
        settings.update(overrides)
        return cls(**settings)

    @classmethod
    def with_read_replicas(cls, **overrides) -> "LogBaseConfig":
        """A config with log-shipping read replicas enabled on top of the
        live-migration stack (followers are fenced through the same
        epochs a migration uses, so ownership changes and replica
        tear-down share one mechanism): the master places followers on
        non-owner servers, each follower tails the owner's log segments
        from the replicated DFS into its own index, and the client
        spreads reads across followers with owner fallback on
        ``FollowerLaggingError``.

        The plain constructor keeps it off so the seed cost model and
        figures are reproduced byte-identically; this preset is what the
        replica benchmark (``bench_replicas``) and replica chaos
        schedules run under.
        """
        settings: dict = {
            "dfs_checksum_replicas": True,
            "dfs_verify_reads": True,
            "dfs_auto_rereplicate": True,
            "dfs_degraded_allocation": True,
            "client_retry_limit": 4,
            "live_migration": True,
            "read_replicas": True,
        }
        settings.update(overrides)
        return cls(**settings)

    @classmethod
    def with_incremental_compaction(cls, **overrides) -> "LogBaseConfig":
        """A config with incremental size-tiered compaction enabled: the
        planner splits each round into per-run plans (unsorted tail plus
        size-tiered merges of sorted runs), sorted inputs stream through
        a k-way merge, and only the touched (table, group) indexes are
        swapped.

        The plain constructor keeps it off so the seed cost model and
        figures are reproduced byte-identically; this preset is what the
        churn benchmark (``bench_compaction``) measures.
        """
        settings: dict = {
            "incremental_compaction": True,
        }
        settings.update(overrides)
        return cls(**settings)

    @classmethod
    def with_group_commit(cls, **overrides) -> "LogBaseConfig":
        """A config with group commit enabled: tablet-server writes are
        submitted to a commit coordinator that coalesces concurrent
        appends into one DFS replication round trip per group and acks
        every member on group durability (BtrLog-style leader/follower
        batching with pipelined replication).

        The plain constructor keeps it off so the seed cost model and
        figures are reproduced byte-identically; this preset is what the
        fan-in benchmark (``bench_group_commit``) measures.
        """
        settings: dict = {
            "group_commit": True,
        }
        settings.update(overrides)
        return cls(**settings)

    @classmethod
    def with_tracing(cls, **overrides) -> "LogBaseConfig":
        """A config with the observability subsystem enabled: the cluster
        installs a tracer, every charged simulated second is attributed to
        a span, and per-op latency histograms + the critical-path report
        become available through ``cluster.tracer``.

        The plain constructor keeps it off so the seed cost model and
        figures are reproduced byte-identically; this preset is what the
        trace benchmark (``bench_obs``) measures.
        """
        settings: dict = {
            "tracing": True,
        }
        settings.update(overrides)
        return cls(**settings)

    @classmethod
    def with_monitoring(cls, **overrides) -> "LogBaseConfig":
        """A config with the cluster monitoring plane enabled: the
        heartbeat-driven time-series scrape, the SLO/alert engine, and
        the chaos flight recorder, all reachable as ``cluster.monitor``.

        The plain constructor keeps it off so the seed cost model and
        figures are reproduced byte-identically; the detection oracle
        (``repro.chaos.detection``) and ``bench_monitoring`` run the
        chaos-family presets with ``monitoring=True`` layered on top.
        """
        settings: dict = {
            "monitoring": True,
        }
        settings.update(overrides)
        return cls(**settings)

    def gray_policy(self):
        """The :class:`~repro.sim.health.GrayPolicy` for this config, or
        None when the ``gray_resilience`` gate is off."""
        if not self.gray_resilience:
            return None
        from repro.sim.health import GrayPolicy

        return GrayPolicy(
            hedge_reads=self.hedge_reads,
            hedge_quantile=self.hedge_quantile,
            hedge_min_delay=self.hedge_min_delay,
            breaker_enabled=self.breaker_enabled,
            breaker_trip_seconds=self.breaker_trip_seconds,
            breaker_cooldown=self.breaker_cooldown,
            breaker_min_samples=self.breaker_min_samples,
        )

    def validate(self) -> None:
        """Raise ValueError on inconsistent settings."""
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        fractions = self.index_heap_fraction + self.cache_heap_fraction
        if self.block_cache_enabled:
            fractions += self.block_cache_heap_fraction
        if not 0.0 <= fractions <= 1.0:
            raise ValueError("heap fractions exceed the heap")
        if self.index_kind not in ("blink", "lsm"):
            raise ValueError(f"unknown index kind {self.index_kind!r}")
        if self.max_versions is not None and self.max_versions < 1:
            raise ValueError("max_versions must be >= 1 or None")
        if self.block_cache_chunk < 1:
            raise ValueError("block_cache_chunk must be >= 1")
        if self.read_coalesce_gap is not None and self.read_coalesce_gap < 0:
            raise ValueError("read_coalesce_gap must be >= 0 or None")
        if self.read_batch_size < 1:
            raise ValueError("read_batch_size must be >= 1")
        if self.scan_prefetch_bytes < 0:
            raise ValueError("scan_prefetch_bytes must be >= 0")
        if self.group_commit_batch < 1:
            raise ValueError("group_commit_batch must be >= 1")
        if self.group_commit_max_delay < 0:
            raise ValueError("group_commit_max_delay must be >= 0")
        if self.group_commit_max_bytes is not None and self.group_commit_max_bytes < 1:
            raise ValueError("group_commit_max_bytes must be >= 1 or None")
        if self.dfs_verify_reads and not self.dfs_checksum_replicas:
            raise ValueError("dfs_verify_reads requires dfs_checksum_replicas")
        if self.client_retry_limit < 0:
            raise ValueError("client_retry_limit must be >= 0")
        if self.client_retry_backoff < 0:
            raise ValueError("client_retry_backoff must be >= 0")
        if self.client_retry_backoff_max < self.client_retry_backoff:
            raise ValueError(
                "client_retry_backoff_max must be >= client_retry_backoff"
            )
        if self.op_deadline is not None and self.op_deadline <= 0:
            raise ValueError("op_deadline must be > 0 or None")
        if self.hedge_quantile <= 0:
            raise ValueError("hedge_quantile must be > 0")
        if self.hedge_min_delay < 0:
            raise ValueError("hedge_min_delay must be >= 0")
        if self.breaker_trip_seconds <= 0:
            raise ValueError("breaker_trip_seconds must be > 0")
        if self.breaker_cooldown < 0:
            raise ValueError("breaker_cooldown must be >= 0")
        if self.breaker_min_samples < 1:
            raise ValueError("breaker_min_samples must be >= 1")
        if self.admission_queue_depth is not None and self.admission_queue_depth < 1:
            raise ValueError("admission_queue_depth must be >= 1 or None")
        if self.recovery_workers < 1:
            raise ValueError("recovery_workers must be >= 1")
        if self.compaction_tier_fanout < 2:
            raise ValueError("compaction_tier_fanout must be >= 2")
        if (
            self.compaction_max_input_bytes is not None
            and self.compaction_max_input_bytes < 1
        ):
            raise ValueError("compaction_max_input_bytes must be >= 1 or None")
        if self.migration_lease_seconds <= 0:
            raise ValueError("migration_lease_seconds must be > 0")
        if self.migration_flip_budget <= 0:
            raise ValueError("migration_flip_budget must be > 0")
        if self.balancer_skew_threshold < 1.0:
            raise ValueError("balancer_skew_threshold must be >= 1")
        if not 0.0 < self.balancer_split_fraction <= 1.0:
            raise ValueError("balancer_split_fraction must be in (0, 1]")
        if self.heat_half_life <= 0:
            raise ValueError("heat_half_life must be > 0")
        if self.read_replicas and not self.live_migration:
            raise ValueError(
                "read_replicas requires live_migration (followers are "
                "fenced through migration epochs)"
            )
        if self.replicas_per_tablet < 0:
            # 0 is legal under the gate: the replica benchmark's baseline
            # arm runs the same config with no followers placed.
            raise ValueError("replicas_per_tablet must be >= 0")
        if self.replica_max_staleness <= 0:
            raise ValueError("replica_max_staleness must be > 0")
        if self.replica_tail_batch < 1:
            raise ValueError("replica_tail_batch must be >= 1")
        if not 0.0 <= self.replica_read_fraction <= 1.0:
            raise ValueError("replica_read_fraction must be in [0, 1]")
        if self.trace_ring < 1:
            raise ValueError("trace_ring must be >= 1")
        if self.trace_slow_samples < 0:
            raise ValueError("trace_slow_samples must be >= 0")
        if self.monitor_ring < 1:
            raise ValueError("monitor_ring must be >= 1")
        if self.monitor_recorder_ring < 1:
            raise ValueError("monitor_recorder_ring must be >= 1")
        if self.monitor_postmortems < 0:
            raise ValueError("monitor_postmortems must be >= 0")
        if self.monitor_series_tail < 1:
            raise ValueError("monitor_series_tail must be >= 1")
        if self.monitor_scrape_interval < 0:
            raise ValueError("monitor_scrape_interval must be >= 0")
        for op_class, target in self.slo_op_p99.items():
            if not isinstance(op_class, str) or not op_class:
                raise ValueError("slo_op_p99 keys must be op-class names")
            if target <= 0:
                raise ValueError("slo_op_p99 targets must be > 0 seconds")
        if not 0.0 < self.slo_objective < 1.0:
            raise ValueError("slo_objective must be in (0, 1)")
        if self.slo_burn_threshold <= 0:
            raise ValueError("slo_burn_threshold must be > 0")
        if self.slo_window <= 0:
            raise ValueError("slo_window must be > 0")
        if self.slo_min_samples < 1:
            raise ValueError("slo_min_samples must be >= 1")
