"""The znode tree: hierarchical nodes with sessions, ephemerals and watches.

This is the Zookeeper data model reduced to what the recipes in this
package need: persistent and ephemeral znodes, sequential znodes (used by
both leader election and fair locks), one-shot watches on existence and
children, and session expiry that deletes ephemerals and fires watches.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import (
    NoNodeError,
    NodeExistsError,
    NotEmptyError,
    SessionExpiredError,
)

WatchCallback = Callable[[str, str], None]  # (event, path)


@dataclass
class ZNodeStat:
    """Metadata returned alongside znode data."""

    version: int
    ephemeral_owner: int | None
    num_children: int


@dataclass
class _ZNode:
    data: bytes = b""
    version: int = 0
    ephemeral_owner: int | None = None
    children: dict[str, "_ZNode"] = field(default_factory=dict)
    sequence_counter: int = 0


class Session:
    """A client session; ephemeral znodes die with it."""

    _ids = itertools.count(1)

    def __init__(self, service: "CoordinationService", owner: str) -> None:
        self.session_id = next(Session._ids)
        self.owner = owner
        self.expired = False
        self._service = service

    def expire(self) -> None:
        """Expire the session: its ephemerals are deleted and watches fire."""
        if not self.expired:
            self.expired = True
            self._service._expire_session(self.session_id)

    def __repr__(self) -> str:
        state = "expired" if self.expired else "live"
        return f"Session(id={self.session_id}, owner={self.owner}, {state})"


class CoordinationService:
    """In-process Zookeeper: znode tree + sessions + watches.

    The service itself is assumed reliable (the real deployment runs a
    replicated ensemble); what the rest of the system exercises is its
    *API contract*, which this class reproduces.
    """

    def __init__(self) -> None:
        self._root = _ZNode()
        self._sessions: dict[int, Session] = {}
        # path -> list of (event filter, callback); one-shot like ZK watches
        self._watches: dict[str, list[WatchCallback]] = {}

    # -- sessions -------------------------------------------------------------

    def connect(self, owner: str) -> Session:
        """Open a session for a client identified by ``owner``."""
        session = Session(self, owner)
        self._sessions[session.session_id] = session
        return session

    def _check_session(self, session: Session) -> None:
        if session.expired:
            raise SessionExpiredError(f"session {session.session_id} expired")

    def _expire_session(self, session_id: int) -> None:
        self._sessions.pop(session_id, None)
        for path in self._ephemeral_paths(session_id):
            self._delete_no_checks(path)
            self._fire(path, "deleted")

    def _ephemeral_paths(self, session_id: int) -> list[str]:
        found: list[str] = []

        def walk(node: _ZNode, path: str) -> None:
            for name, child in node.children.items():
                child_path = f"{path}/{name}"
                if child.ephemeral_owner == session_id:
                    found.append(child_path)
                else:
                    walk(child, child_path)

        walk(self._root, "")
        return found

    # -- path helpers -----------------------------------------------------------

    @staticmethod
    def _split(path: str) -> list[str]:
        if not path.startswith("/") or path == "/":
            raise ValueError(f"invalid znode path {path!r}")
        return [part for part in path.split("/") if part]

    def _lookup(self, path: str) -> _ZNode:
        node = self._root
        for part in self._split(path):
            child = node.children.get(part)
            if child is None:
                raise NoNodeError(path)
            node = child
        return node

    def _lookup_parent(self, path: str) -> tuple[_ZNode, str]:
        parts = self._split(path)
        node = self._root
        for part in parts[:-1]:
            child = node.children.get(part)
            if child is None:
                raise NoNodeError("/" + "/".join(parts[:-1]))
            node = child
        return node, parts[-1]

    # -- core operations ----------------------------------------------------------

    def create(
        self,
        session: Session,
        path: str,
        data: bytes = b"",
        *,
        ephemeral: bool = False,
        sequential: bool = False,
    ) -> str:
        """Create a znode; returns the actual path (suffixed if sequential).

        Raises:
            NodeExistsError: if a non-sequential path already exists.
            NoNodeError: if the parent is missing.
            SessionExpiredError: if the session has expired.
        """
        self._check_session(session)
        parent, name = self._lookup_parent(path)
        if sequential:
            seq = parent.sequence_counter
            parent.sequence_counter += 1
            name = f"{name}{seq:010d}"
            path = path + f"{seq:010d}"
        if name in parent.children:
            raise NodeExistsError(path)
        parent.children[name] = _ZNode(
            data=data,
            ephemeral_owner=session.session_id if ephemeral else None,
        )
        self._fire(path, "created")
        self._fire(self._parent_path(path), "children")
        return path

    def ensure_path(self, session: Session, path: str) -> None:
        """Create every missing ancestor of ``path`` plus ``path`` itself."""
        parts = self._split(path)
        current = ""
        for part in parts:
            current += f"/{part}"
            try:
                self.create(session, current)
            except NodeExistsError:
                continue

    def get(self, path: str) -> tuple[bytes, ZNodeStat]:
        """Return ``(data, stat)`` for ``path``."""
        node = self._lookup(path)
        return node.data, ZNodeStat(
            version=node.version,
            ephemeral_owner=node.ephemeral_owner,
            num_children=len(node.children),
        )

    def set(self, session: Session, path: str, data: bytes) -> int:
        """Replace the data of ``path``; returns the new version."""
        self._check_session(session)
        node = self._lookup(path)
        node.data = data
        node.version += 1
        self._fire(path, "changed")
        return node.version

    def exists(self, path: str) -> bool:
        """Whether ``path`` exists."""
        try:
            self._lookup(path)
            return True
        except NoNodeError:
            return False

    def get_children(self, path: str) -> list[str]:
        """Sorted child names of ``path``."""
        return sorted(self._lookup(path).children)

    def delete(self, session: Session, path: str) -> None:
        """Delete a childless znode.

        Raises:
            NotEmptyError: if the node still has children.
        """
        self._check_session(session)
        node = self._lookup(path)
        if node.children:
            raise NotEmptyError(path)
        self._delete_no_checks(path)
        self._fire(path, "deleted")
        self._fire(self._parent_path(path), "children")

    def _delete_no_checks(self, path: str) -> None:
        parent, name = self._lookup_parent(path)
        parent.children.pop(name, None)

    @staticmethod
    def _parent_path(path: str) -> str:
        head, _, _ = path.rpartition("/")
        return head or "/"

    # -- watches ------------------------------------------------------------------

    def watch(self, path: str, callback: WatchCallback) -> None:
        """Register a one-shot watch on ``path``.

        The callback receives ``(event, path)`` where event is one of
        ``created``, ``changed``, ``deleted`` or ``children`` and is then
        deregistered, matching Zookeeper's one-shot semantics.
        """
        self._watches.setdefault(path, []).append(callback)

    def _fire(self, path: str, event: str) -> None:
        callbacks = self._watches.pop(path, [])
        for callback in callbacks:
            callback(event, path)
