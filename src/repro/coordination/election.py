"""Leader election recipe over the znode tree.

LogBase runs multiple master instances; the active master is elected via
the coordination service and a standby takes over if it fails (§3.3).
This uses the standard ephemeral-sequential election recipe: every
candidate creates an ephemeral sequential node under the election path,
and the candidate owning the smallest sequence number is the leader.
"""

from __future__ import annotations

from repro.coordination.znodes import CoordinationService, Session
from repro.errors import NoNodeError


class LeaderElection:
    """One election domain (e.g. ``/logbase/master-election``)."""

    def __init__(self, service: CoordinationService, path: str) -> None:
        self._service = service
        self._path = path
        self._bootstrap_session = service.connect("election-bootstrap")
        service.ensure_path(self._bootstrap_session, path)
        self._candidates: dict[str, str] = {}  # candidate name -> znode path

    def volunteer(self, session: Session, name: str) -> None:
        """Enter ``name`` into the election using ``session``.

        The candidate's ephemeral node disappears if its session expires,
        automatically promoting the next candidate.
        """
        znode = self._service.create(
            session,
            f"{self._path}/candidate-",
            data=name.encode(),
            ephemeral=True,
            sequential=True,
        )
        self._candidates[name] = znode

    def leader(self) -> str | None:
        """Name of the current leader, or None if nobody volunteered."""
        try:
            children = self._service.get_children(self._path)
        except NoNodeError:
            return None
        if not children:
            return None
        first = children[0]
        data, _ = self._service.get(f"{self._path}/{first}")
        return data.decode()

    def is_leader(self, name: str) -> bool:
        """Whether ``name`` currently leads."""
        return self.leader() == name
