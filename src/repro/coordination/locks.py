"""Distributed lock manager over the coordination service.

LogBase "delegates the task of managing distributed locks to a separate
service, Zookeeper" (§3.7.1).  MVOCC validation acquires per-record write
locks through this manager.  Locks are non-blocking try-locks: validation
either obtains a lock immediately or keeps the locks it holds and retries
later (the paper's pre-claiming protocol); deadlock is avoided by callers
always requesting locks in key order.
"""

from __future__ import annotations

from repro.coordination.znodes import CoordinationService, Session
from repro.errors import LockError, NodeExistsError, NoNodeError


class DistributedLockManager:
    """Exclusive, named locks represented as ephemeral znodes.

    A lock named ``k`` for holder ``h`` is the ephemeral znode
    ``<root>/k`` with data ``h``; existence of the node is lock ownership.
    If the holder's session expires its locks evaporate, so a crashed
    transaction manager cannot strand locks.
    """

    def __init__(self, service: CoordinationService, root: str = "/logbase/locks") -> None:
        self._service = service
        self._root = root
        bootstrap = service.connect("lock-bootstrap")
        service.ensure_path(bootstrap, root)

    def _lock_path(self, name: str) -> str:
        return f"{self._root}/{name}"

    def try_acquire(self, session: Session, name: str, holder: str) -> bool:
        """Attempt to take lock ``name`` for ``holder``.

        Returns:
            True if acquired (or already held by the same holder),
            False if another holder owns it.
        """
        path = self._lock_path(name)
        try:
            self._service.create(session, path, data=holder.encode(), ephemeral=True)
            return True
        except NodeExistsError:
            return self.holder(name) == holder

    def release(self, session: Session, name: str, holder: str) -> None:
        """Release lock ``name``.

        Raises:
            LockError: if the lock is not held by ``holder``.
        """
        path = self._lock_path(name)
        current = self.holder(name)
        if current != holder:
            raise LockError(
                f"lock {name} held by {current!r}, not releasable by {holder!r}"
            )
        self._service.delete(session, path)

    def holder(self, name: str) -> str | None:
        """Current holder of lock ``name``, or None if free."""
        try:
            data, _ = self._service.get(self._lock_path(name))
            return data.decode()
        except NoNodeError:
            return None

    def held_locks(self, holder: str) -> list[str]:
        """All lock names currently held by ``holder`` (diagnostics)."""
        names = []
        for child in self._service.get_children(self._root):
            if self.holder(child) == holder:
                names.append(child)
        return names
