"""Timestamp oracle: the global commit-timestamp authority.

LogBase "employs Zookeeper as a timestamp authority to establish a global
counter for generating transaction's commit timestamps and therefore
ensuring a global order for committed update transactions" (§3.7.1).
Timestamps are strictly increasing integers; the same counter also stamps
single-record writes so versions are totally ordered system-wide.
"""

from __future__ import annotations

import struct

from repro.coordination.znodes import CoordinationService
from repro.errors import NodeExistsError


class TimestampOracle:
    """Strictly monotonic 64-bit timestamp dispenser backed by a znode."""

    _PATH = "/logbase/tso"

    def __init__(self, service: CoordinationService, start: int = 1) -> None:
        self._service = service
        self._session = service.connect("tso")
        service.ensure_path(self._session, "/logbase")
        try:
            service.create(self._session, self._PATH, struct.pack(">q", start))
        except NodeExistsError:
            pass

    def next_timestamp(self) -> int:
        """Allocate and return the next timestamp."""
        data, _ = self._service.get(self._PATH)
        (value,) = struct.unpack(">q", data)
        self._service.set(self._session, self._PATH, struct.pack(">q", value + 1))
        return value

    def current(self) -> int:
        """The next timestamp that *would* be allocated (read-only peek)."""
        data, _ = self._service.get(self._PATH)
        (value,) = struct.unpack(">q", data)
        return value

    def read_timestamp(self) -> int:
        """Snapshot timestamp for a read-only transaction: every commit
        strictly earlier than this value is visible."""
        return self.current()
