"""Coordination service modelled after Zookeeper.

LogBase uses Zookeeper for four things (§3.3, §3.7): master election,
tablet-server liveness, distributed write locks during MVOCC validation,
and a global timestamp authority for commit timestamps.  This package
implements a znode tree with sessions, ephemeral and sequential nodes and
watches, and builds the election, lock-manager and timestamp-oracle
recipes on top of it.
"""

from repro.coordination.znodes import CoordinationService, Session, ZNodeStat
from repro.coordination.election import LeaderElection
from repro.coordination.locks import DistributedLockManager
from repro.coordination.tso import TimestampOracle

__all__ = [
    "CoordinationService",
    "Session",
    "ZNodeStat",
    "LeaderElection",
    "DistributedLockManager",
    "TimestampOracle",
]
