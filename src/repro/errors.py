"""Exception hierarchy for the LogBase reproduction.

Every package raises subclasses of :class:`LogBaseError` so callers can
catch one base type at API boundaries.  Errors are grouped by subsystem:
storage (DFS), log repository, index, coordination, transactions, and
cluster management.
"""

from __future__ import annotations


class LogBaseError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Distributed file system
# ---------------------------------------------------------------------------

class DFSError(LogBaseError):
    """Base class for distributed-file-system failures."""


class FileNotFoundInDFS(DFSError):
    """The requested path does not exist in the namenode's namespace."""


class FileAlreadyExists(DFSError):
    """Attempted to create a path that already exists."""


class FileClosedError(DFSError):
    """Attempted to write to a file handle that has been closed."""


class ReplicationError(DFSError):
    """Not enough live datanodes to satisfy the replication factor."""


class BlockCorruptionError(DFSError):
    """A block's checksum did not match its stored payload."""


class DataNodeDownError(DFSError):
    """The datanode addressed by a read or write is not alive."""


class ReplicaCorruptError(DFSError):
    """A replica failed checksum verification on the read path; the reader
    should fail over to another replica."""


class NetworkPartitionError(LogBaseError):
    """The destination machine is unreachable under the active network
    partition."""


class DeadlineExceededError(LogBaseError):
    """The operation's deadline expired before it could complete.

    Raised by deadline-aware paths (tablet server reads, log repository
    reads, DFS replica reads) instead of charging unbounded simulated
    time against a limping component.
    """


# ---------------------------------------------------------------------------
# Log repository
# ---------------------------------------------------------------------------

class LogError(LogBaseError):
    """Base class for log-repository failures."""


class CorruptLogRecord(LogError):
    """A log record failed checksum or framing validation while decoding."""


class InvalidLogPointer(LogError):
    """A log pointer addressed a segment or offset that does not exist."""


# ---------------------------------------------------------------------------
# Index
# ---------------------------------------------------------------------------

class IndexError_(LogBaseError):
    """Base class for index failures (named with a trailing underscore to
    avoid shadowing the builtin :class:`IndexError`)."""


class IndexCapacityError(IndexError_):
    """The in-memory index exceeded its configured memory budget."""


# ---------------------------------------------------------------------------
# Coordination service
# ---------------------------------------------------------------------------

class CoordinationError(LogBaseError):
    """Base class for coordination-service failures."""


class NodeExistsError(CoordinationError):
    """Attempted to create a znode path that already exists."""


class NoNodeError(CoordinationError):
    """The addressed znode path does not exist."""


class NotEmptyError(CoordinationError):
    """Attempted to delete a znode that still has children."""


class SessionExpiredError(CoordinationError):
    """The client session backing an ephemeral node has expired."""


class LockError(CoordinationError):
    """A distributed lock operation failed (e.g. releasing a lock that the
    caller does not hold)."""


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------

class TransactionError(LogBaseError):
    """Base class for transaction failures."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (validation conflict or explicit abort).

    Attributes:
        reason: human-readable explanation of the abort.
    """

    def __init__(self, reason: str = "aborted"):
        super().__init__(reason)
        self.reason = reason


class ValidationConflict(TransactionAborted):
    """MVOCC validation detected a write-write conflict with a concurrently
    committed transaction (first-committer-wins)."""


class TransactionStateError(TransactionError):
    """An operation was attempted in an illegal transaction state, e.g.
    reading after commit."""


# ---------------------------------------------------------------------------
# Cluster / tablet management
# ---------------------------------------------------------------------------

class ClusterError(LogBaseError):
    """Base class for cluster-management failures."""


class TabletNotFound(ClusterError):
    """No tablet covers the requested key for the requested table."""


class TableNotFound(ClusterError):
    """The requested table does not exist in the catalog."""


class TableAlreadyExists(ClusterError):
    """Attempted to create a table that already exists."""


class ServerDownError(ClusterError):
    """The tablet server addressed by a request has failed."""


class ServerOverloadedError(ClusterError):
    """The tablet server shed this request: its modelled in-flight queue
    is full (admission control).

    Attributes:
        retry_after: simulated seconds after which the server expects to
            have drained enough backlog to admit the request.
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after


class TabletRecoveringError(ClusterError):
    """The addressed tablet is owned by this server but its redo has not
    finished yet (fast recovery serves tablets as each one's replay
    completes).  Retryable: the client's existing backoff covers the
    remaining recovery window."""


class TabletMigratingError(ClusterError):
    """The addressed tablet is mid-handoff: either this server is inside
    the brief fenced flip window of a live migration (or split), or its
    ownership lease has lapsed and it must not serve until the master
    re-grants one.  Retryable: the client invalidates its location cache
    (ownership may have moved) and re-resolves after backoff."""


class FollowerLaggingError(ClusterError):
    """A read-replica (follower) could not serve a bounded-staleness read:
    its replication watermark is older than the request's ``max_staleness``
    allows, the follower is not (or no longer) subscribed to the tablet,
    or the log position it needs was retired by the owner's compaction.
    Retryable: the client falls back to the tablet's owner for this read
    and keeps the follower in rotation (lag is transient; the next
    heartbeat advances the tail)."""


class MigrationError(ClusterError):
    """A live tablet migration could not complete (the state machine
    aborted or hit an unrecoverable precondition)."""


class RecoveryError(ClusterError):
    """Recovery of a failed tablet server could not complete."""
