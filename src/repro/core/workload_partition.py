"""Workload-driven horizontal partitioning (§3.2).

For applications whose data "cannot be naturally partitioned into entity
groups", the paper points to two alternatives: a group formation protocol
that clusters records into key groups [G-Store], and the workload-driven
approach of Schism [11]: "this approach models the transaction workload
as a graph in which data records constitute vertices and transactions
constitute edges.  A graph partitioning algorithm is used to split the
graph into sub partitions while reducing number of cross-partition
transactions."

This module implements that advisor: build the co-access graph from a
transaction trace, partition it with recursive Kernighan-Lin bisection
(networkx), and score assignments by the fraction of transactions that
would need two-phase commit.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from itertools import combinations

import networkx as nx

TransactionTrace = list[set[bytes]]  # keys co-accessed per transaction


@dataclass
class PartitionAssignment:
    """A key -> partition mapping plus its quality metrics."""

    n_partitions: int
    mapping: dict[bytes, int] = field(default_factory=dict)

    def partition_of(self, key: bytes) -> int:
        """Partition hosting ``key`` (unseen keys hash onto a partition)."""
        assigned = self.mapping.get(key)
        if assigned is not None:
            return assigned
        return hash(key) % self.n_partitions

    def partitions_touched(self, keys: set[bytes]) -> set[int]:
        """Partitions one transaction's key set spans."""
        return {self.partition_of(key) for key in keys}

    def distributed_fraction(self, trace: TransactionTrace) -> float:
        """Share of transactions spanning more than one partition — each
        of these pays two-phase commit (§3.7.2)."""
        if not trace:
            return 0.0
        distributed = sum(
            1 for keys in trace if len(self.partitions_touched(keys)) > 1
        )
        return distributed / len(trace)

    def balance(self) -> float:
        """max/mean partition size (1.0 = perfectly balanced)."""
        sizes = defaultdict(int)
        for partition in self.mapping.values():
            sizes[partition] += 1
        if not sizes:
            return 1.0
        counts = [sizes.get(p, 0) for p in range(self.n_partitions)]
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0


def hash_assignment(keys: set[bytes], n_partitions: int) -> PartitionAssignment:
    """Baseline: hash keys onto partitions (ignores the workload)."""
    assignment = PartitionAssignment(n_partitions)
    for key in keys:
        assignment.mapping[key] = hash(key) % n_partitions
    return assignment


def range_assignment(keys: set[bytes], n_partitions: int) -> PartitionAssignment:
    """Baseline: contiguous key ranges (LogBase's default tablets)."""
    assignment = PartitionAssignment(n_partitions)
    ordered = sorted(keys)
    per_part = max(1, (len(ordered) + n_partitions - 1) // n_partitions)
    for i, key in enumerate(ordered):
        assignment.mapping[key] = min(i // per_part, n_partitions - 1)
    return assignment


class WorkloadPartitioner:
    """Schism-style graph partitioner over a transaction trace.

    Args:
        n_partitions: target partition count (rounded up internally to a
            power of two for recursive bisection; outputs are re-labelled
            back into ``n_partitions`` buckets by balanced merging).
    """

    def __init__(self, n_partitions: int) -> None:
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        self.n_partitions = n_partitions

    def build_graph(self, trace: TransactionTrace) -> nx.Graph:
        """The co-access graph: record vertices, weighted co-access edges."""
        graph = nx.Graph()
        for keys in trace:
            for key in keys:
                if not graph.has_node(key):
                    graph.add_node(key)
            for a, b in combinations(sorted(keys), 2):
                if graph.has_edge(a, b):
                    graph[a][b]["weight"] += 1
                else:
                    graph.add_edge(a, b, weight=1)
        return graph

    def partition(self, trace: TransactionTrace) -> PartitionAssignment:
        """Partition the trace's keys to minimize cross-partition edges."""
        graph = self.build_graph(trace)
        parts: list[set[bytes]] = [set(graph.nodes)]
        # Recursive weighted bisection until enough parts exist.
        while len(parts) < self.n_partitions:
            parts.sort(key=len, reverse=True)
            biggest = parts.pop(0)
            if len(biggest) < 2:
                parts.append(biggest)
                break
            sub = graph.subgraph(biggest)
            left, right = nx.algorithms.community.kernighan_lin_bisection(
                sub, weight="weight", seed=7
            )
            parts.extend([set(left), set(right)])
        # If bisection overshot a non-power-of-two target, merge the two
        # smallest parts until the count fits.
        while len(parts) > self.n_partitions:
            parts.sort(key=len)
            merged = parts.pop(0) | parts.pop(0)
            parts.append(merged)
        assignment = PartitionAssignment(self.n_partitions)
        for partition_id, keys in enumerate(parts):
            for key in keys:
                assignment.mapping[key] = partition_id
        return assignment

    def compare(
        self, trace: TransactionTrace
    ) -> dict[str, PartitionAssignment]:
        """The workload-driven assignment next to both baselines."""
        keys = {key for txn in trace for key in txn}
        return {
            "hash": hash_assignment(keys, self.n_partitions),
            "range": range_assignment(keys, self.n_partitions),
            "workload-driven": self.partition(trace),
        }
