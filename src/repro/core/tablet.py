"""Tablet metadata: a horizontal partition of one table (§3.2-3.3)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partition import KeyRange
from repro.core.schema import TableSchema


@dataclass(frozen=True)
class TabletId:
    """Stable identifier of one tablet: table name + partition ordinal."""

    table: str
    ordinal: int

    def __str__(self) -> str:
        return f"{self.table}#{self.ordinal}"


@dataclass(frozen=True)
class Tablet:
    """One tablet: its identity, key range, and the owning table schema."""

    tablet_id: TabletId
    key_range: KeyRange
    schema: TableSchema

    @property
    def table(self) -> str:
        """Owning table name."""
        return self.tablet_id.table

    def covers(self, key: bytes) -> bool:
        """Whether this tablet's range contains ``key``."""
        return self.key_range.contains(key)
