"""Relational schemas with column groups (§3.1-3.2).

LogBase adapts the relational model to column-oriented storage: a table's
columns are clustered into *column groups* stored in separate physical
partitions.  Every group implicitly embeds the primary key so tuples can
be reconstructed by collecting all groups for a key.

Group values travel as encoded byte strings in log records; the codec here
is a simple length-prefixed column/value sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.varint import decode_uvarint, encode_uvarint


@dataclass(frozen=True)
class ColumnGroup:
    """A named set of columns stored together.

    Attributes:
        name: group name, unique within the table.
        columns: column names in the group (primary key excluded; it is
            implicit in every group).
    """

    name: str
    columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("column group needs a name")
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate columns in group {self.name!r}")


@dataclass(frozen=True)
class TableSchema:
    """A table: primary key column plus column groups.

    Attributes:
        name: table name.
        key_column: the primary key column.
        groups: column groups; each non-key column belongs to exactly one.
    """

    name: str
    key_column: str
    groups: tuple[ColumnGroup, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("table needs a name")
        seen: set[str] = set()
        for group in self.groups:
            for column in group.columns:
                if column == self.key_column:
                    raise ValueError(
                        f"key column {column!r} must not appear in group {group.name!r}"
                    )
                if column in seen:
                    raise ValueError(f"column {column!r} in multiple groups")
                seen.add(column)

    @property
    def group_names(self) -> list[str]:
        """Names of all column groups, schema order."""
        return [group.name for group in self.groups]

    def group(self, name: str) -> ColumnGroup:
        """Look up a group by name.

        Raises:
            KeyError: if no group has that name.
        """
        for group in self.groups:
            if group.name == name:
                return group
        raise KeyError(f"table {self.name!r} has no column group {name!r}")

    def group_of_column(self, column: str) -> ColumnGroup:
        """The group that stores ``column``.

        Raises:
            KeyError: if the column is unknown (or is the key column).
        """
        for group in self.groups:
            if column in group.columns:
                return group
        raise KeyError(f"table {self.name!r} has no column {column!r}")

    def groups_for_columns(self, columns: set[str]) -> list[ColumnGroup]:
        """The minimal set of groups covering ``columns``."""
        needed = []
        for group in self.groups:
            if set(group.columns) & columns:
                needed.append(group)
        return needed


def encode_group_value(values: dict[str, bytes]) -> bytes:
    """Serialize one group's column values for a log record payload."""
    out = bytearray()
    out += encode_uvarint(len(values))
    for column in sorted(values):
        raw_col = column.encode()
        out += encode_uvarint(len(raw_col))
        out += raw_col
        payload = values[column]
        out += encode_uvarint(len(payload))
        out += payload
    return bytes(out)


def decode_group_value(payload: bytes) -> dict[str, bytes]:
    """Inverse of :func:`encode_group_value`."""
    pos = 0
    count, pos = decode_uvarint(payload, pos)
    values: dict[str, bytes] = {}
    for _ in range(count):
        n, pos = decode_uvarint(payload, pos)
        column = payload[pos : pos + n].decode()
        pos += n
        n, pos = decode_uvarint(payload, pos)
        values[column] = payload[pos : pos + n]
        pos += n
    return values
