"""LogBase core: schemas, partitioning, tablet servers, master, cluster.

This package is the paper's primary contribution: the log-only tablet
server (§3.6), its checkpoint/recovery protocol (§3.8), the partitioning
strategies (§3.2) and the cluster/master machinery (§3.3), assembled into
the :class:`~repro.core.database.LogBase` facade.
"""

from repro.core.schema import TableSchema, ColumnGroup, encode_group_value, decode_group_value
from repro.core.partition import (
    KeyRange,
    QueryTrace,
    VerticalPartitioner,
    split_key_domain,
)
from repro.core.tablet import Tablet, TabletId
from repro.core.read_cache import ReadCache
from repro.core.tablet_server import TabletServer
from repro.core.master import Master
from repro.core.cluster import LogBaseCluster
from repro.core.database import LogBase

__all__ = [
    "TableSchema",
    "ColumnGroup",
    "encode_group_value",
    "decode_group_value",
    "KeyRange",
    "QueryTrace",
    "VerticalPartitioner",
    "split_key_domain",
    "Tablet",
    "TabletId",
    "ReadCache",
    "TabletServer",
    "Master",
    "LogBaseCluster",
    "LogBase",
]
