"""Cluster assembly: machines, DFS, coordination, masters, tablet servers.

Mirrors the paper's deployment (§4.1): every machine runs both a datanode
and a tablet server; the DFS is shared; masters are elected through the
coordination service; a timestamp oracle hands out commit timestamps.
"""

from __future__ import annotations

from repro.config import LogBaseConfig
from repro.coordination.tso import TimestampOracle
from repro.coordination.znodes import CoordinationService
from repro.core.checkpoint import CheckpointManager
from repro.core.master import Master, SharedCatalog
from repro.core.migration import LiveMigrator
from repro.core.tablet_server import TabletServer
from repro.dfs.filesystem import DFS
from repro.obs.hist import Histogram
from repro.obs.trace import Tracer, install_tracer
from repro.sim.clock import makespan
from repro.sim.failure import FailureInjector
from repro.sim.machine import Machine
from repro.sim.metrics import HIST_REPLICA_LAG, Counters


class LogBaseCluster:
    """A complete simulated LogBase deployment.

    Args:
        n_nodes: number of machines (each runs datanode + tablet server).
        config: deployment configuration.
        n_masters: master instances entering the election.
    """

    def __init__(
        self,
        n_nodes: int = 3,
        config: LogBaseConfig | None = None,
        n_masters: int = 1,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.config = config if config is not None else LogBaseConfig()
        self.config.validate()
        self.machines = [
            Machine(
                f"node-{i}",
                rack=f"rack-{i % self.config.racks}",
                disk_model=self.config.disk,
                network=self.config.network,
            )
            for i in range(n_nodes)
        ]
        self.dfs = DFS(
            self.machines,
            replication=self.config.replication,
            block_size=self.config.dfs_block_size,
            checksum_replicas=self.config.dfs_checksum_replicas,
            block_cache_bytes=(
                self.config.block_cache_budget_bytes
                if self.config.block_cache_enabled
                else 0
            ),
            block_cache_chunk=self.config.block_cache_chunk,
            verify_reads=self.config.dfs_verify_reads,
            degraded_allocation=self.config.dfs_degraded_allocation,
            gray=self.config.gray_policy(),
        )
        if self.config.tracing:
            self.tracer: Tracer | None = Tracer(
                ring=self.config.trace_ring,
                slow_samples=self.config.trace_slow_samples,
            )
            install_tracer(self.tracer)
        else:
            self.tracer = None
        self.coordination = CoordinationService()
        self.tso = TimestampOracle(self.coordination)
        catalog = SharedCatalog()
        self.masters = [
            Master(f"master-{i}", self.dfs, self.coordination, catalog)
            for i in range(n_masters)
        ]
        self.servers: list[TabletServer] = []
        self.checkpoints: dict[str, CheckpointManager] = {}
        self.failures = FailureInjector()
        # Master-side view of tablet access heat, folded in from server
        # heartbeats.  It survives server crashes (the server's own heat
        # dies with its memory) so fast recovery can order bring-up.
        self.tablet_heat: dict[str, float] = {}
        # When each heat entry last belonged to an assigned tablet, in
        # makespan seconds — unassigned ("ghost") entries decay from here.
        self._heat_seen: dict[str, float] = {}
        # The migrator is bound to a master's coordination session; it is
        # rebuilt after a failover so the new master's session fences it.
        self._migrator: LiveMigrator | None = None
        # Heartbeat-reported replication lag across every hosted replica
        # (read_replicas gate; None otherwise so the seed path allocates
        # nothing).
        self.replica_lag_histogram: Histogram | None = (
            Histogram(HIST_REPLICA_LAG) if self.config.read_replicas else None
        )
        # Monitoring plane (config.monitoring gate): scrape + alerts +
        # flight recorder, ticked at the end of every heartbeat.  Pure
        # bookkeeping over existing state — it advances no clock, so the
        # seed path is byte-identical with the gate off and behavior-
        # identical with it on.  Imported lazily: the seed path never
        # loads the module.
        if self.config.monitoring:
            from repro.obs.monitor import ClusterMonitor

            self.monitor: "ClusterMonitor | None" = ClusterMonitor(self)
        else:
            self.monitor = None
        for machine in self.machines:
            server = TabletServer(
                f"ts-{machine.name}", machine, self.dfs, self.tso, self.config
            )
            self.servers.append(server)
            self.checkpoints[server.name] = CheckpointManager(self.dfs, server)
            self.master.register_server(server)
            self.failures.register(server.name, machine)

    def add_node(self, *, rebalance: bool = True) -> TabletServer:
        """Elastic scale-out: provision a machine, start a datanode and a
        tablet server on it, and (optionally) rebalance tablets onto it."""
        machine = Machine(
            f"node-{len(self.machines)}",
            rack=f"rack-{len(self.machines) % self.config.racks}",
            disk_model=self.config.disk,
            network=self.config.network,
        )
        self.machines.append(machine)
        self.dfs.add_machine(machine)
        server = TabletServer(
            f"ts-{machine.name}", machine, self.dfs, self.tso, self.config
        )
        self.servers.append(server)
        self.checkpoints[server.name] = CheckpointManager(self.dfs, server)
        self.master.register_server(server)
        self.failures.register(server.name, machine)
        if rebalance:
            self.master.rebalance()
        return server

    def remove_node(self, name: str) -> None:
        """Elastic scale-back: gracefully move a server's tablets away and
        retire it (its datanode keeps serving existing replicas)."""
        self.master.decommission(name)
        server = self.server_by_name(name)
        server.serving = False

    def create_table(self, schema, **kwargs):
        """Convenience passthrough to the active master's DDL."""
        return self.master.create_table(schema, **kwargs)

    @property
    def master(self) -> Master:
        """The active (elected) master."""
        for master in self.masters:
            if master.is_active:
                return master
        return self.masters[0]

    @property
    def migrator(self) -> LiveMigrator:
        """The live migrator bound to the *active* master.  After a
        failover the cached instance's session is expired, so a fresh one
        is built around the new master — the stale one can no longer
        advance any migration (its znode writes raise)."""
        active = self.master
        if self._migrator is None or self._migrator.master is not active:
            self._migrator = LiveMigrator(active, self.config)
        return self._migrator

    def migrate_tablet(self, tablet_id: str, target: str):
        """Move one tablet.  With ``live_migration`` on this is the
        lease-fenced online handoff (unavailability bounded to the flip
        window); off, it falls back to the master's stop-the-tablet move.
        """
        if self.config.live_migration:
            return self.migrator.migrate(tablet_id, target)
        return self.master.move_tablet(tablet_id, target)

    def split_tablet(self, tablet_id: str, split_key: bytes | None = None):
        """Split a hot tablet in place (live-migration gate required)."""
        if not self.config.live_migration:
            raise ValueError("tablet splitting requires config.live_migration")
        return self.migrator.split(tablet_id, split_key)

    def resume_migrations(self) -> list[dict]:
        """Converge interrupted migrations/splits (run after a master
        failover or an aborted attempt)."""
        return self.migrator.resume()

    def balance(self) -> list[dict]:
        """One load-balancer tick over the heartbeat heat snapshot."""
        if not self.config.live_migration:
            return []
        return self.migrator.balance_tick(dict(self.tablet_heat))

    def server_by_name(self, name: str) -> TabletServer:
        """Tablet server handle by name."""
        for server in self.servers:
            if server.name == name:
                return server
        raise KeyError(name)

    def elapsed_makespan(self) -> float:
        """Cluster phase duration: max simulated clock across machines."""
        return makespan([machine.clock for machine in self.machines])

    def reset_clocks(self) -> None:
        """Zero every machine clock (between benchmark phases)."""
        for machine in self.machines:
            machine.clock.reset()
            machine.disk.invalidate_head()

    def total_counters(self) -> dict[str, float]:
        """Cluster-wide counter totals."""
        totals = Counters()
        for machine in self.machines:
            totals.merge(machine.counters)
        return totals.snapshot()

    def kill_server(self, name: str, *, permanent: bool = False):
        """Crash a tablet server; optionally trigger permanent failover.

        Returns the :class:`~repro.core.master.FailoverReport` for
        permanent failures, else None.
        """
        server = self.server_by_name(name)
        server.crash()
        if permanent:
            return self.master.handle_permanent_failure(name)
        return None

    def kill_node(self, name: str) -> None:
        """Crash a whole machine: its tablet server *and* its datanode
        stop serving (they share the machine's ``alive`` flag).  The
        server's in-memory state is lost, as in a power failure."""
        server = self.server_by_name(name)
        server.crash()
        self.failures.kill(name)

    def restart_server(self, name: str, *, recover: bool = True):
        """Bring a crashed server (and its machine, if the whole node went
        down) back up, re-take its liveness znode when the old session
        expired, and optionally run checkpoint+redo recovery.

        Tablets that failed over to other servers while this one was down
        stay where they are — the restarted server rejoins empty-handed
        and picks up work at the next ``rebalance()`` (kill -> revive ->
        re-adopt).  Returns the :class:`~repro.core.recovery.RecoveryReport`
        when recovery ran, else None.

        With ``config.fast_recovery`` on, recovery runs the parallel
        hot-first path: redo partitioned across ``recovery_workers``
        virtual workers, tablets brought up hottest-first (using the
        heartbeat heat snapshot) and served as each one completes.
        """
        from repro.core.recovery import recover_server, recover_server_parallel

        server = self.server_by_name(name)
        if not server.machine.alive:
            self.failures.revive(name)
        server.restart()
        if not self.coordination.exists(f"/logbase/servers/{name}"):
            self.master.register_server(server)
        else:
            # Session survived the crash: just refresh the catalog handle.
            self.master.catalog.servers[name] = server
        if recover:
            if self.config.fast_recovery:
                return recover_server_parallel(
                    server, self.checkpoints[name], heat=dict(self.tablet_heat)
                )
            return recover_server(server, self.checkpoints[name])
        return None

    def heartbeat(self) -> dict:
        """One cluster heartbeat tick, the periodic pass a real deployment
        runs continuously: expire the coordination sessions of dead
        servers (so the master's watches fire and — with auto-failover
        enabled — their tablets are adopted), and run the namenode's
        background re-replication when ``dfs_auto_rereplicate`` is on.

        With live migration enabled the tick also renews ownership leases
        for reachable live owners (a paused or partitioned server misses
        its renewals, so its lease lapses and it self-fences) and
        reconciles stale owners — a rejoined server quietly drops tablets
        the catalog has since moved elsewhere.

        Returns ``{"expired": [names], "rereplicated": count}``.
        """
        expired: list[str] = []
        for server in self.servers:
            session = self.master.catalog.server_sessions.get(server.name)
            if session is None or session.expired:
                continue
            if not server.machine.alive or not server.serving:
                self.master.expire_server(server.name)
                expired.append(server.name)
        # Fold live servers' access heat into the master-side snapshot
        # (fast recovery orders a crashed server's tablet bring-up by it).
        for server in self.servers:
            if server.machine.alive and server.serving:
                for tablet_id, value in server.heat.items():
                    if value > self.tablet_heat.get(tablet_id, 0.0):
                        self.tablet_heat[tablet_id] = value
        self._decay_ghost_heat()
        if self.config.live_migration:
            self._renew_leases()
            self._reconcile_stale_owners()
        replica_lags: dict[str, float] = {}
        if self.config.read_replicas:
            self._place_followers()
            replica_lags = self._tail_followers()
        created = 0
        if self.config.dfs_auto_rereplicate:
            created = self.dfs.heartbeat()
        tick = {
            "expired": expired,
            "rereplicated": created,
            "replica_lags": replica_lags,
        }
        if self.monitor is not None:
            tick["alerts_fired"] = self.monitor.tick()
        return tick

    def _decay_ghost_heat(self) -> None:
        """Half-life decay for heat entries whose tablet no longer exists
        in the catalog (deleted, split away, or renamed by failover) —
        without it the balancer would chase ghosts forever."""
        now = self.elapsed_makespan()
        assignments = self.master.catalog.assignments
        for tablet_id in list(self.tablet_heat):
            if tablet_id in assignments:
                self._heat_seen[tablet_id] = now
                continue
            seen = self._heat_seen.setdefault(tablet_id, now)
            age = now - seen
            if age <= 0.0:
                continue
            decayed = self.tablet_heat[tablet_id] * 0.5 ** (
                age / self.config.heat_half_life
            )
            if decayed < 0.5:
                del self.tablet_heat[tablet_id]
                self._heat_seen.pop(tablet_id, None)
            else:
                self.tablet_heat[tablet_id] = decayed
                self._heat_seen[tablet_id] = now

    def _renew_leases(self) -> None:
        """Re-grant ownership leases to catalog owners the cluster can
        still reach.  Tablets mid-handoff are skipped — the migrator's
        fence, not the heartbeat, decides when they serve again."""
        migrator = self.migrator
        for tablet_id, owner_name in self.master.catalog.assignments.items():
            owner = self.master.catalog.servers.get(owner_name)
            if owner is None or not owner.machine.alive or not owner.serving:
                continue
            if tablet_id in owner.migrating_tablets:
                continue
            if migrator._majority_reachable(owner):
                owner.grant_lease(tablet_id)

    def _place_followers(self) -> None:
        """Maintain the read-replica placement (read_replicas gate).

        For every assigned tablet, pick up to ``replicas_per_tablet``
        follower servers deterministically — the sorted live non-owners,
        rotated by the tablet's ordinal so replicas spread across the
        cluster — record the placement in the shared catalog (the client
        routes off it), and converge the servers: subscribe the desired
        followers under the tablet's current fence epoch, tear down the
        rest.  An ownership change bumps the epoch and the migrator drops
        the tablet's placement, so this pass re-points the followers at
        the new owner — they never keep applying a deposed owner's
        post-fence records.
        """
        catalog = self.master.catalog
        live = [
            name
            for name in self.master.live_servers()
            if (server := catalog.servers.get(name)) is not None
            and server.machine.alive
            and server.serving
        ]
        desired_by_server: dict[str, dict[str, tuple]] = {name: {} for name in live}
        assignments = sorted(catalog.assignments.items())
        for ordinal, (tablet_id, owner_name) in enumerate(assignments):
            candidates = [name for name in live if name != owner_name]
            if not candidates or self.config.replicas_per_tablet < 1:
                catalog.followers.pop(tablet_id, None)
                continue
            rotated = (
                candidates[ordinal % len(candidates):]
                + candidates[: ordinal % len(candidates)]
            )
            desired = rotated[: self.config.replicas_per_tablet]
            catalog.followers[tablet_id] = desired
            epoch = catalog.fence_epochs.get(f"mig-{tablet_id}", 0)
            try:
                tablet = self.master._tablet_by_id(tablet_id)
            except Exception:
                catalog.followers.pop(tablet_id, None)
                continue
            for name in desired:
                desired_by_server[name][tablet_id] = (tablet, owner_name, epoch)
        # Placements for tablets that no longer exist in the catalog.
        for tablet_id in list(catalog.followers):
            if tablet_id not in catalog.assignments:
                del catalog.followers[tablet_id]
        for name in live:
            server = catalog.servers[name]
            desired = desired_by_server.get(name, {})
            for tablet_id in list(server.followers):
                if tablet_id not in desired:
                    server.unfollow_tablet(tablet_id)
            for tablet_id, (tablet, owner_name, epoch) in desired.items():
                server.follow_tablet(tablet, owner_name, epoch)

    def _tail_followers(self) -> dict[str, float]:
        """One tail pass on every live follower server; records each
        replica's pre-pass staleness into the lag histogram and returns
        the worst lag per tablet (the heartbeat-reported lag)."""
        worst: dict[str, float] = {}
        for server in self.servers:
            if not server.machine.alive or not server.serving:
                continue
            if not server.followers:
                continue
            lags = server.tail_followed_logs()
            for tablet_id, lag in lags.items():
                if tablet_id not in worst or lag > worst[tablet_id]:
                    worst[tablet_id] = lag
                if self.replica_lag_histogram is not None and lag != float("inf"):
                    self.replica_lag_histogram.record(lag)
        return worst

    def _reconcile_stale_owners(self) -> None:
        """Drop tablets from servers the catalog no longer assigns them
        to (e.g. a partitioned ex-owner rejoining after its tablet was
        migrated away).  Its lapsed lease already kept it from serving;
        this reclaims the memory."""
        assignments = self.master.catalog.assignments
        for server in self.servers:
            if not server.machine.alive or not server.serving:
                continue
            for tablet_id in list(server.tablets):
                if tablet_id in server.migrating_tablets:
                    continue
                if assignments.get(tablet_id) != server.name:
                    server.unassign_tablet(server.tablets[tablet_id].tablet_id)
