"""Failure recovery (§3.8): redo from the last consistent checkpoint.

Recovery of a restarted tablet server:

1. reload the persisted index files (if a checkpoint exists);
2. redo-scan the log from the checkpoint position: committed writes whose
   LSN exceeds the checkpointed LSN are re-applied to the indexes;
   invalidated entries re-apply their deletions; writes of transactions
   with no commit record are ignored (MVOCC defers all modifications to
   commit time, so redo-only recovery is sufficient — no undo).

Permanent failure of a server instead *splits* its log by tablet (the
log is in the shared DFS) so healthy servers can adopt the tablets and
recover them from the split files.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.checkpoint import CheckpointManager
from repro.core.tablet_server import TabletServer
from repro.dfs.filesystem import DFS
from repro.errors import TabletNotFound
from repro.obs.trace import root_span, span
from repro.sim.machine import Machine
from repro.sim.metrics import (
    SPAN_RECOVERY_ADOPT,
    SPAN_RECOVERY_RECOVER,
    SPAN_RECOVERY_REDO,
)
from repro.wal.record import LogPointer, LogRecord, RecordType
from repro.wal.repository import LogRepository


@dataclass
class RecoveryReport:
    """What a recovery pass did (asserted by tests, reported by benches)."""

    used_checkpoint: bool = False
    checkpoint_lsn: int = 0
    records_scanned: int = 0
    writes_applied: int = 0
    deletes_applied: int = 0
    uncommitted_ignored: int = 0
    seconds: float = 0.0


def redo_scan(
    server: TabletServer,
    *,
    start: LogPointer | None = None,
    min_lsn: int = 0,
    repository: LogRepository | None = None,
) -> RecoveryReport:
    """Redo committed log records into the server's indexes.

    Args:
        server: the recovering (or adopting) server.
        start: log position to scan from (checkpoint position); None scans
            the whole log.
        min_lsn: records at or below this LSN are already reflected in the
            reloaded checkpoint and are skipped.
        repository: log to scan; defaults to the server's own log (a
            split-log file from a failed peer may be passed instead).

    Transactional writes are buffered per transaction and applied only
    when that transaction's COMMIT record is found; trailing uncommitted
    writes are ignored (they will disappear at the next compaction).
    """
    report = RecoveryReport()
    log = repository if repository is not None else server.log
    pending: dict[int, list[tuple[LogPointer, LogRecord]]] = defaultdict(list)
    tombstones: dict[tuple[str, str, bytes], int] = {}
    max_lsn = min_lsn
    with span(SPAN_RECOVERY_REDO, log.machine):
        for pointer, record in log.scan_all(start=start):
            report.records_scanned += 1
            max_lsn = max(max_lsn, record.lsn)
            if record.lsn <= min_lsn:
                continue
            if record.record_type is RecordType.WRITE:
                if record.txn_id == 0:
                    _apply(server, record, pointer, report, tombstones)
                else:
                    pending[record.txn_id].append((pointer, record))
            elif record.record_type is RecordType.INVALIDATE:
                if record.txn_id == 0:
                    _apply_delete(server, record, report, tombstones)
                else:
                    pending[record.txn_id].append((pointer, record))
            elif record.record_type is RecordType.COMMIT:
                for buffered_pointer, buffered in pending.pop(record.txn_id, []):
                    if buffered.record_type is RecordType.WRITE:
                        _apply(server, buffered, buffered_pointer, report, tombstones)
                    else:
                        _apply_delete(server, buffered, report, tombstones)
            elif record.record_type is RecordType.ABORT:
                pending.pop(record.txn_id, None)
    report.uncommitted_ignored = sum(len(v) for v in pending.values())
    server.log.set_next_lsn(max_lsn + 1)
    return report


def _apply(
    server: TabletServer,
    record: LogRecord,
    pointer: LogPointer,
    report: RecoveryReport,
    tombstones: dict[tuple[str, str, bytes], int] | None = None,
) -> None:
    try:
        index = server.index_for(record.table, record.key, record.group)
    except TabletNotFound:
        return  # tablet now owned elsewhere
    if tombstones is not None:
        # Incremental compaction re-homes versions into sorted runs whose
        # file order no longer matches timestamp order: a write can appear
        # *after* the tombstone that shadows it (e.g. the delete marker
        # still sits in the unsorted tail while a merge re-emitted the old
        # version into a higher-numbered run).  Timestamps disambiguate —
        # a version at or below a seen tombstone is dead regardless of
        # scan order (the TSO makes any legitimate rebirth strictly newer).
        if tombstones.get((record.table, record.group, record.key), -1) >= record.timestamp:
            return
    index.insert(record.key, record.timestamp, pointer)
    report.writes_applied += 1


def _apply_delete(
    server: TabletServer,
    record: LogRecord,
    report: RecoveryReport,
    tombstones: dict[tuple[str, str, bytes], int] | None = None,
) -> None:
    if tombstones is not None:
        slot = (record.table, record.group, record.key)
        tombstones[slot] = max(tombstones.get(slot, -1), record.timestamp)
    try:
        index = server.index_for(record.table, record.key, record.group)
    except TabletNotFound:
        return
    # An INVALIDATE kills versions at or below its timestamp, not the key
    # wholesale: incremental compaction re-emits tombstones into sorted
    # runs whose file order no longer matches timestamp order, so a redo
    # may apply a newer surviving version *before* it reaches the
    # tombstone that only shadows older ones.
    survivors = [e for e in index.versions(record.key) if e.timestamp > record.timestamp]
    index.delete_key(record.key)
    for entry in survivors:
        index.insert(entry.key, entry.timestamp, entry.pointer)
    report.deletes_applied += 1


def recover_server(server: TabletServer, checkpoints: CheckpointManager) -> RecoveryReport:
    """Full restart recovery: reload checkpoint (if any) then redo the tail."""
    start_clock = server.machine.clock.now
    # Recovery runs with no client op open, so on a traced cluster it
    # starts its own trace; on an untraced one the span is a no-op.
    scope = (
        root_span(SPAN_RECOVERY_RECOVER, server.machine, server=server.name)
        if server.config.tracing
        else span(SPAN_RECOVERY_RECOVER, server.machine, server=server.name)
    )
    with scope:
        # Spilled (LSM) indexes can reopen their flushed runs from the
        # manifest instead of rebuilding them from the log.
        for index in server.indexes().values():
            reopen = getattr(index, "reopen", None)
            if reopen is not None:
                reopen()
        start: LogPointer | None = None
        min_lsn = 0
        used = False
        if checkpoints.has_checkpoint():
            block = checkpoints.load_checkpoint()
            start = block.position
            min_lsn = block.lsn
            used = True
        report = redo_scan(server, start=start, min_lsn=min_lsn)
    report.used_checkpoint = used
    report.checkpoint_lsn = min_lsn
    report.seconds = server.machine.clock.now - start_clock
    return report


@dataclass
class SplitLogs:
    """Output of :func:`split_log_by_tablet`."""

    paths: dict[str, str] = field(default_factory=dict)  # tablet id -> path


def split_log_by_tablet(
    dfs: DFS,
    failed_server_name: str,
    splitter: Machine,
    *,
    start: LogPointer | None = None,
    locate=None,
) -> SplitLogs:
    """Split a failed server's log into one file per tablet (§3.8).

    "The log of the failed servers, which is stored in the shared DFS, is
    scanned (from the consistent recovery starting point) and split into
    separate files for each tablet."  The adopting servers then redo from
    their tablet's split file.

    Args:
        locate: ``(table, key) -> tablet id`` used for records from
            compacted (slim) segments, whose per-record tablet field is
            stripped; the master passes its catalog lookup.
    """
    failed_log = LogRepository.reattach(
        dfs, splitter, f"/logbase/{failed_server_name}/log"
    )
    buffers: dict[str, list[bytes]] = defaultdict(list)
    for _, record in failed_log.scan_all(start=start):
        if record.record_type in (RecordType.COMMIT, RecordType.ABORT):
            # Commit/abort markers gate every tablet's records: replicate
            # them into every split so per-tablet redo sees them.
            for buffer in buffers.values():
                buffer.append(record.encode())
            continue
        tablet = record.tablet
        if not tablet and locate is not None:
            tablet = locate(record.table, record.key)
        buffers[tablet].append(record.encode())
    result = SplitLogs()
    for tablet_id, frames in buffers.items():
        path = f"/logbase/splits/{failed_server_name}/{tablet_id}/segment-00000001.log"
        if dfs.exists(path):
            dfs.delete(path)
        writer = dfs.create(path, splitter)
        writer.append(b"".join(frames))
        writer.close()
        result.paths[tablet_id] = path
    return result


def adopt_split_log(
    server: TabletServer, dfs: DFS, failed_server_name: str, tablet_id: str
) -> RecoveryReport:
    """Redo one tablet's split-log file into an adopting server's indexes.

    The adopting server must already have the tablet assigned.  Note the
    pointers applied refer to the *split* file's repository, so the
    adopting server re-reads record payloads from the failed server's
    original log via the shared DFS; to keep pointers valid this rewrites
    the records into the adopter's own log (data is re-appended once,
    which also re-homes the tablet's data locally).
    """
    split_root = f"/logbase/splits/{failed_server_name}/{tablet_id}"
    split_repo = LogRepository.reattach(dfs, server.machine, split_root)
    report = RecoveryReport()
    pending: dict[int, list[LogRecord]] = defaultdict(list)
    tombstones: dict[tuple[str, str, bytes], int] = {}

    def as_committed(record: LogRecord) -> LogRecord:
        # Only committed records reach replay, and the commit markers
        # themselves are not rewritten into the adopter's log — re-home
        # the record as auto-committed (txn_id 0) so a later compaction
        # or redo scan of the adopter's log does not drop it as
        # uncommitted (same trick compaction plays for slim records).
        if record.txn_id == 0:
            return record
        return LogRecord(
            record_type=record.record_type,
            lsn=record.lsn,
            txn_id=0,
            table=record.table,
            tablet=record.tablet,
            key=record.key,
            group=record.group,
            timestamp=record.timestamp,
            value=record.value,
        )

    def replay(record: LogRecord) -> None:
        if record.record_type is RecordType.WRITE:
            pointer, stamped = server.log.append(as_committed(record))
            _apply(server, stamped, pointer, report, tombstones)
        elif record.record_type is RecordType.INVALIDATE:
            server.log.append(as_committed(record))
            _apply_delete(server, record, report, tombstones)

    scope = (
        root_span(SPAN_RECOVERY_ADOPT, server.machine, tablet=tablet_id)
        if server.config.tracing
        else span(SPAN_RECOVERY_ADOPT, server.machine, tablet=tablet_id)
    )
    with scope:
        for _, record in split_repo.scan_all():
            report.records_scanned += 1
            if record.record_type in (RecordType.WRITE, RecordType.INVALIDATE):
                if record.txn_id == 0:
                    replay(record)
                else:
                    pending[record.txn_id].append(record)
            elif record.record_type is RecordType.COMMIT:
                for buffered in pending.pop(record.txn_id, []):
                    replay(buffered)
            elif record.record_type is RecordType.ABORT:
                pending.pop(record.txn_id, None)
    report.uncommitted_ignored = sum(len(v) for v in pending.values())
    return report
