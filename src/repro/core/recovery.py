"""Failure recovery (§3.8): redo from the last consistent checkpoint.

Recovery of a restarted tablet server:

1. reload the persisted index files (if a checkpoint exists);
2. redo-scan the log from the checkpoint position: committed writes whose
   LSN exceeds the checkpointed LSN are re-applied to the indexes;
   invalidated entries re-apply their deletions; writes of transactions
   with no commit record are ignored (MVOCC defers all modifications to
   commit time, so redo-only recovery is sufficient — no undo).

Permanent failure of a server instead *splits* its log by tablet (the
log is in the shared DFS) so healthy servers can adopt the tablets and
recover them from the split files.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.checkpoint import CheckpointManager
from repro.core.tablet_server import TabletServer
from repro.dfs.filesystem import DFS
from repro.errors import RecoveryError, TabletNotFound
from repro.obs.hist import Histogram
from repro.obs.trace import root_span, span
from repro.sim.failure import (
    CP_ADOPT_MID,
    CP_RECOVERY_MID,
    CP_SPLIT_PERSIST,
    crash_point,
)
from repro.sim.machine import Machine
from repro.sim.metrics import (
    HIST_RECOVERY_TABLET_SECONDS,
    RECOVERY_ADOPT_SKIPPED,
    RECOVERY_DELETES_APPLIED,
    RECOVERY_PARALLEL_RUNS,
    RECOVERY_SPLITS_PERSISTED,
    RECOVERY_TABLETS_RECOVERED,
    RECOVERY_WRITES_APPLIED,
    SPAN_RECOVERY_ADOPT,
    SPAN_RECOVERY_RECOVER,
    SPAN_RECOVERY_REDO,
    SPAN_RECOVERY_TABLET,
)
from repro.sim.scheduler import ConcurrentScheduler, Invoke, measured
from repro.wal.record import LogPointer, LogRecord, RecordType
from repro.wal.repository import LogRepository


@dataclass
class RecoveryReport:
    """What a recovery pass did (asserted by tests, reported by benches).

    ``seconds`` is the recovery wall-clock: the machine-clock delta for
    the sequential path, the virtual-time makespan of the worker fleet
    for the parallel path (workers overlap, so the makespan is what a
    client would observe as unavailability).
    """

    used_checkpoint: bool = False
    checkpoint_lsn: int = 0
    records_scanned: int = 0
    writes_applied: int = 0
    deletes_applied: int = 0
    uncommitted_ignored: int = 0
    seconds: float = 0.0
    # -- fast-recovery extras (defaults keep the sequential path's shape) --
    parallel: bool = False
    tablets_recovered: int = 0
    skipped: int = 0  # adoption replays deduped as already applied
    tablet_seconds: dict[str, float] = field(default_factory=dict)
    tablet_ready: dict[str, float] = field(default_factory=dict)  # virtual ready time
    first_ready_seconds: float = 0.0  # earliest tablet_ready (0.0 if none)

    def to_dict(self) -> dict:
        return {
            "used_checkpoint": self.used_checkpoint,
            "checkpoint_lsn": self.checkpoint_lsn,
            "records_scanned": self.records_scanned,
            "writes_applied": self.writes_applied,
            "deletes_applied": self.deletes_applied,
            "uncommitted_ignored": self.uncommitted_ignored,
            "seconds": self.seconds,
            "parallel": self.parallel,
            "tablets_recovered": self.tablets_recovered,
            "skipped": self.skipped,
            "tablet_seconds": dict(self.tablet_seconds),
            "tablet_ready": dict(self.tablet_ready),
            "first_ready_seconds": self.first_ready_seconds,
        }


def redo_scan(
    server: TabletServer,
    *,
    start: LogPointer | None = None,
    min_lsn: int = 0,
    repository: LogRepository | None = None,
) -> RecoveryReport:
    """Redo committed log records into the server's indexes.

    Args:
        server: the recovering (or adopting) server.
        start: log position to scan from (checkpoint position); None scans
            the whole log.
        min_lsn: records at or below this LSN are already reflected in the
            reloaded checkpoint and are skipped.
        repository: log to scan; defaults to the server's own log (a
            split-log file from a failed peer may be passed instead).

    Transactional writes are buffered per transaction and applied only
    when that transaction's COMMIT record is found; trailing uncommitted
    writes are ignored (they will disappear at the next compaction).
    """
    report = RecoveryReport()
    log = repository if repository is not None else server.log
    pending: dict[int, list[tuple[LogPointer, LogRecord]]] = defaultdict(list)
    tombstones: dict[tuple[str, str, bytes], int] = {}
    max_lsn = min_lsn
    current_segment = -1
    with span(SPAN_RECOVERY_REDO, log.machine):
        for pointer, record in log.scan_all(start=start):
            if pointer.file_no != current_segment:
                current_segment = pointer.file_no
                crash_point(
                    CP_RECOVERY_MID, server=server.name, segment=current_segment
                )
            report.records_scanned += 1
            max_lsn = max(max_lsn, record.lsn)
            if record.lsn <= min_lsn:
                continue
            if record.record_type is RecordType.WRITE:
                if record.txn_id == 0:
                    _apply(server, record, pointer, report, tombstones)
                else:
                    pending[record.txn_id].append((pointer, record))
            elif record.record_type is RecordType.INVALIDATE:
                if record.txn_id == 0:
                    _apply_delete(server, record, report, tombstones)
                else:
                    pending[record.txn_id].append((pointer, record))
            elif record.record_type is RecordType.COMMIT:
                for buffered_pointer, buffered in pending.pop(record.txn_id, []):
                    if buffered.record_type is RecordType.WRITE:
                        _apply(server, buffered, buffered_pointer, report, tombstones)
                    else:
                        _apply_delete(server, buffered, report, tombstones)
            elif record.record_type is RecordType.ABORT:
                pending.pop(record.txn_id, None)
    report.uncommitted_ignored = sum(len(v) for v in pending.values())
    if log is server.log:
        # Only a scan of the server's *own* log may move its LSN cursor:
        # scanning a foreign repository (a dead peer's split file) says
        # nothing about what this server has appended.
        server.log.set_next_lsn(max_lsn + 1)
    return report


def _apply(
    server: TabletServer,
    record: LogRecord,
    pointer: LogPointer,
    report: RecoveryReport,
    tombstones: dict[tuple[str, str, bytes], int] | None = None,
) -> None:
    try:
        index = server.index_for(record.table, record.key, record.group)
    except TabletNotFound:
        return  # tablet now owned elsewhere
    if tombstones is not None:
        # Incremental compaction re-homes versions into sorted runs whose
        # file order no longer matches timestamp order: a write can appear
        # *after* the tombstone that shadows it (e.g. the delete marker
        # still sits in the unsorted tail while a merge re-emitted the old
        # version into a higher-numbered run).  Timestamps disambiguate —
        # a version at or below a seen tombstone is dead regardless of
        # scan order (the TSO makes any legitimate rebirth strictly newer).
        if tombstones.get((record.table, record.group, record.key), -1) >= record.timestamp:
            return
    index.insert(record.key, record.timestamp, pointer)
    report.writes_applied += 1


def _apply_delete(
    server: TabletServer,
    record: LogRecord,
    report: RecoveryReport,
    tombstones: dict[tuple[str, str, bytes], int] | None = None,
) -> None:
    if tombstones is not None:
        slot = (record.table, record.group, record.key)
        tombstones[slot] = max(tombstones.get(slot, -1), record.timestamp)
    try:
        index = server.index_for(record.table, record.key, record.group)
    except TabletNotFound:
        return
    # An INVALIDATE kills versions at or below its timestamp, not the key
    # wholesale: incremental compaction re-emits tombstones into sorted
    # runs whose file order no longer matches timestamp order, so a redo
    # may apply a newer surviving version *before* it reaches the
    # tombstone that only shadows older ones.
    survivors = [e for e in index.versions(record.key) if e.timestamp > record.timestamp]
    index.delete_key(record.key)
    for entry in survivors:
        index.insert(entry.key, entry.timestamp, entry.pointer)
    report.deletes_applied += 1


def recover_server(server: TabletServer, checkpoints: CheckpointManager) -> RecoveryReport:
    """Full restart recovery: reload checkpoint (if any) then redo the tail."""
    start_clock = server.machine.clock.now
    # Recovery runs with no client op open, so on a traced cluster it
    # starts its own trace; on an untraced one the span is a no-op.
    scope = (
        root_span(SPAN_RECOVERY_RECOVER, server.machine, server=server.name)
        if server.config.tracing
        else span(SPAN_RECOVERY_RECOVER, server.machine, server=server.name)
    )
    with scope:
        # Spilled (LSM) indexes can reopen their flushed runs from the
        # manifest instead of rebuilding them from the log.
        for index in server.indexes().values():
            reopen = getattr(index, "reopen", None)
            if reopen is not None:
                reopen()
        start: LogPointer | None = None
        min_lsn = 0
        used = False
        if checkpoints.has_checkpoint():
            block = checkpoints.load_checkpoint()
            start = block.position
            min_lsn = block.lsn
            used = True
        report = redo_scan(server, start=start, min_lsn=min_lsn)
    report.used_checkpoint = used
    report.checkpoint_lsn = min_lsn
    report.seconds = server.machine.clock.now - start_clock
    server.last_recovery = report
    return report


@dataclass
class SplitLogs:
    """Output of :func:`split_log_by_tablet`."""

    paths: dict[str, str] = field(default_factory=dict)  # tablet id -> path
    # Source-log position right after the last record the scan covered;
    # a live migration's flip delta re-splits from here.
    end: LogPointer | None = None


def _atomic_write(dfs: DFS, path: str, payload: bytes, machine: Machine) -> None:
    """Install ``payload`` at ``path`` via tmp + rename (same idiom as the
    compaction manifest): readers see either the old file or the complete
    new one, never a torn prefix."""
    tmp = path + ".tmp"
    if dfs.exists(tmp):
        dfs.delete(tmp)  # stale leftover from a crashed writer
    writer = dfs.create(tmp, machine)
    writer.append(payload)
    writer.close()
    if dfs.exists(path):
        dfs.delete(path)
    dfs.rename(tmp, path)


def split_fence_path(failed_server_name: str) -> str:
    """DFS path of a failed server's split fence token."""
    return f"/logbase/splits/{failed_server_name}/FENCE"


def read_split_fence(dfs: DFS, failed_server_name: str, machine: Machine) -> int | None:
    """Current fence epoch of a server's split directory (None if unfenced)."""
    path = split_fence_path(failed_server_name)
    if not dfs.exists(path):
        return None
    return int(dfs.open(path, machine).read_all().decode())


def split_log_by_tablet(
    dfs: DFS,
    failed_server_name: str,
    splitter: Machine,
    *,
    start: LogPointer | None = None,
    locate=None,
    fence: int | None = None,
    only_tablet: str | None = None,
    out_name: str | None = None,
) -> SplitLogs:
    """Split a failed server's log into one file per tablet (§3.8).

    "The log of the failed servers, which is stored in the shared DFS, is
    scanned (from the consistent recovery starting point) and split into
    separate files for each tablet."  The adopting servers then redo from
    their tablet's split file.

    Args:
        locate: ``(table, key) -> tablet id`` used for records from
            compacted (slim) segments, whose per-record tablet field is
            stripped; the master passes its catalog lookup.
        fence: epoch token installed *after* every split file; adopters
            that were handed this epoch refuse to replay a directory
            whose fence does not match (a crashed splitter leaves the old
            fence — or none — so a retried failover re-splits under a
            fresh epoch before anyone adopts).
        only_tablet: restrict the split to one tablet id (a live
            migration catches up exactly the moving tablet; everything
            else stays where it is).
        out_name: directory name under ``/logbase/splits/`` the split
            files (and fence) are written to; defaults to
            ``failed_server_name``.  A live migration uses a
            migration-scoped name so its catch-up files never collide
            with a real failover of the same (still alive) source.
    """
    out = out_name if out_name is not None else failed_server_name
    failed_log = LogRepository.reattach(
        dfs, splitter, f"/logbase/{failed_server_name}/log"
    )
    buffers: dict[str, list[bytes]] = defaultdict(list)
    for _, record in failed_log.scan_all(start=start):
        if record.record_type in (RecordType.COMMIT, RecordType.ABORT):
            # Commit/abort markers gate every tablet's records: replicate
            # them into every split so per-tablet redo sees them.
            for buffer in buffers.values():
                buffer.append(record.encode())
            continue
        tablet = record.tablet
        if not tablet and locate is not None:
            tablet = locate(record.table, record.key)
        if only_tablet is not None and tablet != only_tablet:
            continue
        buffers[tablet].append(record.encode())
    result = SplitLogs(end=failed_log.end_pointer())
    for tablet_id, frames in sorted(buffers.items()):
        path = f"/logbase/splits/{out}/{tablet_id}/segment-00000001.log"
        tmp = path + ".tmp"
        if dfs.exists(tmp):
            dfs.delete(tmp)
        writer = dfs.create(tmp, splitter)
        writer.append(b"".join(frames))
        writer.close()
        # A crash here leaves only the tmp file: reattach skips it (not a
        # numbered segment) and an adopter still sees the previous split —
        # or nothing — never a torn one.
        crash_point(CP_SPLIT_PERSIST, server=failed_server_name, tablet=tablet_id)
        if dfs.exists(path):
            dfs.delete(path)
        dfs.rename(tmp, path)
        splitter.counters.add(RECOVERY_SPLITS_PERSISTED)
        result.paths[tablet_id] = path
    if fence is not None:
        # The fence goes in last: it vouches that every split file above
        # belongs to this epoch.  Crashing before this line leaves a
        # stale (or absent) fence and adopters refuse the directory.
        _atomic_write(dfs, split_fence_path(out), str(fence).encode(), splitter)
    return result


def adopt_split_log(
    server: TabletServer,
    dfs: DFS,
    failed_server_name: str,
    tablet_id: str,
    *,
    fence: int | None = None,
) -> RecoveryReport:
    """Redo one tablet's split-log file into an adopting server's indexes.

    The adopting server must already have the tablet assigned.  Note the
    pointers applied refer to the *split* file's repository, so the
    adopting server re-reads record payloads from the failed server's
    original log via the shared DFS; to keep pointers valid this rewrites
    the records into the adopter's own log (data is re-appended once,
    which also re-homes the tablet's data locally).

    Adoption is restartable: a write whose (key, timestamp) version is
    already in the adopter's index (a previous adoption attempt crashed
    after appending it) is skipped, so re-running never double-appends
    re-homed data.  When ``fence`` is given, the split directory's fence
    token must match it — a stale fence means the splitter crashed before
    finishing this epoch and the failover must re-split first.

    Raises:
        RecoveryError: on a fence mismatch.
    """
    if fence is not None:
        found = read_split_fence(dfs, failed_server_name, server.machine)
        if found != fence:
            raise RecoveryError(
                f"split fence mismatch for {failed_server_name}: "
                f"expected epoch {fence}, found {found}"
            )
    split_root = f"/logbase/splits/{failed_server_name}/{tablet_id}"
    split_repo = LogRepository.reattach(dfs, server.machine, split_root)
    report = RecoveryReport()
    pending: dict[int, list[LogRecord]] = defaultdict(list)
    tombstones: dict[tuple[str, str, bytes], int] = {}

    def already_adopted(record: LogRecord) -> bool:
        # TSO timestamps are unique per version, so an index entry with
        # this record's (key, timestamp) can only be a previous adoption
        # attempt's append — replaying it again would double-append.
        try:
            index = server.index_for(record.table, record.key, record.group)
        except TabletNotFound:
            return False
        return any(
            entry.timestamp == record.timestamp
            for entry in index.versions(record.key)
        )

    def as_committed(record: LogRecord) -> LogRecord:
        # Only committed records reach replay, and the commit markers
        # themselves are not rewritten into the adopter's log — re-home
        # the record as auto-committed (txn_id 0) so a later compaction
        # or redo scan of the adopter's log does not drop it as
        # uncommitted (same trick compaction plays for slim records).
        if record.txn_id == 0:
            return record
        return LogRecord(
            record_type=record.record_type,
            lsn=record.lsn,
            txn_id=0,
            table=record.table,
            tablet=record.tablet,
            key=record.key,
            group=record.group,
            timestamp=record.timestamp,
            value=record.value,
        )

    def replay(record: LogRecord) -> None:
        if record.record_type is RecordType.WRITE:
            crash_point(CP_ADOPT_MID, server=server.name, tablet=tablet_id)
            if already_adopted(record):
                report.skipped += 1
                server.machine.counters.add(RECOVERY_ADOPT_SKIPPED)
                return
            pointer, stamped = server.log.append(as_committed(record))
            _apply(server, stamped, pointer, report, tombstones)
        elif record.record_type is RecordType.INVALIDATE:
            crash_point(CP_ADOPT_MID, server=server.name, tablet=tablet_id)
            # Tombstone replay is naturally idempotent (the watermark only
            # moves forward); duplicates from a restarted adoption collapse
            # at the next compaction's (key, timestamp) dedupe.
            server.log.append(as_committed(record))
            _apply_delete(server, record, report, tombstones)

    scope = (
        root_span(SPAN_RECOVERY_ADOPT, server.machine, tablet=tablet_id)
        if server.config.tracing
        else span(SPAN_RECOVERY_ADOPT, server.machine, tablet=tablet_id)
    )
    with scope:
        for _, record in split_repo.scan_all():
            report.records_scanned += 1
            if record.record_type in (RecordType.WRITE, RecordType.INVALIDATE):
                if record.txn_id == 0:
                    replay(record)
                else:
                    pending[record.txn_id].append(record)
            elif record.record_type is RecordType.COMMIT:
                for buffered in pending.pop(record.txn_id, []):
                    replay(buffered)
            elif record.record_type is RecordType.ABORT:
                pending.pop(record.txn_id, None)
    report.uncommitted_ignored = sum(len(v) for v in pending.values())
    return report


def recover_server_parallel(
    server: TabletServer,
    checkpoints: CheckpointManager,
    *,
    heat: dict[str, float] | None = None,
    workers: int | None = None,
    on_tablet_ready=None,
) -> RecoveryReport:
    """Fast restart recovery: partitioned redo scan, hot-first bring-up.

    Two phases, each multiplexed over ``config.recovery_workers`` virtual
    clients of the :class:`~repro.sim.scheduler.ConcurrentScheduler`:

    1. **Partitioned tail scan** — the log segments after the checkpoint
       position are scanned concurrently; records are *collected* and
       bucketed per tablet (nothing is applied yet), commit/abort markers
       are gathered globally.  Scan wall-clock is the widest worker's
       lane, not the whole log.
    2. **Hot-first bring-up** — tablets ordered by access heat (hottest
       first) are brought up concurrently: reload the tablet's checkpoint
       index files, apply its gated records in the sequential redo's
       order, then flip the tablet to serving immediately.  Until a
       tablet's own redo completes, ops on it raise the retryable
       :class:`~repro.errors.TabletRecoveringError`.

    Commit gating is resolved between the phases in plain bookkeeping: a
    transactional record applies iff a COMMIT marker with a higher LSN
    exists, and records apply in ``(commit LSN, record LSN)`` order —
    exactly the order the sequential scan applies them — so the resulting
    index state matches :func:`recover_server` on the same log.

    The pass is restartable: it mutates only in-memory indexes (plus the
    max-clamped LSN cursor), so a crash at :data:`CP_RECOVERY_MID` and a
    re-run from the same checkpoint converges to the same state.

    Args:
        heat: ``tablet id -> access count`` ordering hint (the master's
            heartbeat snapshot); missing tablets count as cold.
        workers: override ``config.recovery_workers``.
        on_tablet_ready: ``(tablet_id, virtual_ready_time)`` callback
            fired as each tablet flips to serving.
    """
    machine = server.machine
    start_clock = machine.clock.now
    n_workers = max(1, workers if workers is not None else server.config.recovery_workers)
    heat = heat or {}
    report = RecoveryReport(parallel=True)
    redo_histogram = Histogram(HIST_RECOVERY_TABLET_SECONDS)

    scope = (
        root_span(SPAN_RECOVERY_RECOVER, machine, server=server.name, parallel=True)
        if server.config.tracing
        else span(SPAN_RECOVERY_RECOVER, machine, server=server.name, parallel=True)
    )
    with scope:
        server.begin_tablet_recovery(server.tablets.keys())

        block = None
        start: LogPointer | None = None
        min_lsn = 0
        if checkpoints.has_checkpoint():
            # Only the block is read up front; each tablet loads its own
            # index files during bring-up so cold tablets do not delay
            # hot ones.
            block = checkpoints.read_block()
            start = block.position
            min_lsn = block.lsn
            report.used_checkpoint = True
            report.checkpoint_lsn = min_lsn

        # -- phase 1: partitioned tail scan -----------------------------
        tail = [
            file_no
            for file_no in server.log.segments()
            if start is None or file_no >= start.file_no
        ]
        shared = {"max_lsn": min_lsn, "scanned": 0}
        committed: dict[int, int] = {}  # txn id -> COMMIT marker LSN
        aborted: set[int] = set()
        # tablet id -> [(record LSN, pointer, record)]; "" collects
        # records routing to no local tablet (owned elsewhere) so the
        # uncommitted count still matches the sequential scan's.
        buckets: dict[str, list[tuple[int, LogPointer, LogRecord]]] = defaultdict(list)

        def scan_segment_fn(file_no: int):
            def run(now: float) -> None:
                crash_point(CP_RECOVERY_MID, server=server.name, segment=file_no)
                for pointer, record in server.log.scan_segment(file_no):
                    if (
                        start is not None
                        and file_no == start.file_no
                        and pointer.offset < start.offset
                    ):
                        continue
                    shared["scanned"] += 1
                    if record.lsn > shared["max_lsn"]:
                        shared["max_lsn"] = record.lsn
                    if record.lsn <= min_lsn:
                        continue
                    if record.record_type is RecordType.COMMIT:
                        committed[record.txn_id] = record.lsn
                    elif record.record_type is RecordType.ABORT:
                        aborted.add(record.txn_id)
                    else:
                        try:
                            tablet = server._route(record.table, record.key)
                            tablet_key = str(tablet.tablet_id)
                        except TabletNotFound:
                            tablet_key = ""
                        buckets[tablet_key].append((record.lsn, pointer, record))

            return measured(machine, run)

        def scan_worker(lane: list[int]):
            for file_no in lane:
                yield Invoke(scan_segment_fn(file_no))

        scan_sched = ConcurrentScheduler()
        for lane in (tail[i::n_workers] for i in range(n_workers)):
            if lane:
                scan_sched.add_client(scan_worker(lane))
        scan_makespan = scan_sched.run()
        report.records_scanned = shared["scanned"]
        # The cursor moves before any tablet serves, so the first
        # post-recovery append already has a fresh LSN.
        server.log.set_next_lsn(shared["max_lsn"] + 1)

        # -- commit gating (plain bookkeeping, no simulated cost) -------
        def resolve(
            bucket: list[tuple[int, LogPointer, LogRecord]],
        ) -> tuple[list[tuple[int, int, LogPointer, LogRecord]], int]:
            eligible: list[tuple[int, int, LogPointer, LogRecord]] = []
            uncommitted = 0
            for lsn, pointer, record in bucket:
                if record.txn_id == 0:
                    eligible.append((lsn, lsn, pointer, record))
                    continue
                commit_lsn = committed.get(record.txn_id)
                if commit_lsn is not None and commit_lsn > lsn:
                    # Sequential redo applies a txn's records when it
                    # reaches the COMMIT marker: effective order is the
                    # marker's LSN, ties broken by append order.
                    eligible.append((commit_lsn, lsn, pointer, record))
                elif record.txn_id not in aborted:
                    uncommitted += 1
            eligible.sort(key=lambda item: (item[0], item[1]))
            return eligible, uncommitted

        foreign = buckets.pop("", None)
        if foreign is not None:
            _, uncommitted = resolve(foreign)
            report.uncommitted_ignored += uncommitted

        order = sorted(
            server.tablets.keys(), key=lambda tid: (-heat.get(tid, 0.0), tid)
        )
        resolved: dict[str, list[tuple[int, int, LogPointer, LogRecord]]] = {}
        for tablet_key in order:
            eligible, uncommitted = resolve(buckets.get(tablet_key, []))
            resolved[tablet_key] = eligible
            report.uncommitted_ignored += uncommitted

        # -- phase 2: hot-first per-tablet bring-up ---------------------
        def bring_up_fn(tablet_key: str):
            def run(now: float) -> tuple[None, float]:
                crash_point(CP_RECOVERY_MID, server=server.name, tablet=tablet_key)
                clock0 = machine.clock.now
                tablet = server.tablets[tablet_key]
                with span(SPAN_RECOVERY_TABLET, machine, tablet=tablet_key):
                    for group in tablet.schema.group_names:
                        index = server._ensure_index(tablet.tablet_id, group)
                        reopen = getattr(index, "reopen", None)
                        if reopen is not None:
                            reopen()
                    if block is not None:
                        checkpoints.load_tablet(block, tablet_key)
                    tombstones: dict[tuple[str, str, bytes], int] = {}
                    for _, _, pointer, record in resolved[tablet_key]:
                        if record.record_type is RecordType.WRITE:
                            _apply(server, record, pointer, report, tombstones)
                        else:
                            _apply_delete(server, record, report, tombstones)
                seconds = machine.clock.now - clock0
                server.finish_tablet_recovery(tablet_key)
                ready_at = now + seconds
                report.tablet_seconds[tablet_key] = seconds
                report.tablet_ready[tablet_key] = ready_at
                redo_histogram.record(seconds)
                machine.counters.add(RECOVERY_TABLETS_RECOVERED)
                if on_tablet_ready is not None:
                    on_tablet_ready(tablet_key, ready_at)
                return None, seconds

            return run

        def bring_up_worker(lane: list[str]):
            for tablet_key in lane:
                yield Invoke(bring_up_fn(tablet_key))

        bring_sched = ConcurrentScheduler()
        for lane in (order[i::n_workers] for i in range(n_workers)):
            if lane:
                bring_sched.add_client(bring_up_worker(lane), at=scan_makespan)
        total = bring_sched.run() if order else scan_makespan

    report.seconds = max(total, scan_makespan)
    report.tablets_recovered = len(order)
    if report.tablet_ready:
        report.first_ready_seconds = min(report.tablet_ready.values())
    machine.counters.add(RECOVERY_PARALLEL_RUNS)
    machine.counters.add(RECOVERY_WRITES_APPLIED, report.writes_applied)
    machine.counters.add(RECOVERY_DELETES_APPLIED, report.deletes_applied)
    server.last_recovery = report
    server.recovery_histogram = redo_histogram
    return report
