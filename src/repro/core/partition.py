"""Data partitioning (§3.2).

Two layers:

* **Vertical** — columns are grouped into column groups by a
  workload-driven cost model: "multiple ways of grouping these columns
  into different partitions are enumerated.  The I/O cost of each
  assignment is computed based on the query workload trace and the best
  assignment is selected."  Exhaustive enumeration (set partitions) is
  used for small schemas and a greedy merge heuristic beyond that.

* **Horizontal** — each column group's rows are range-partitioned into
  tablets.  Entity-group-friendly key design (common prefixes per user)
  keeps a transaction's data on one tablet, which the TPC-W benchmark
  exploits to avoid two-phase commit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schema import ColumnGroup, TableSchema


@dataclass(frozen=True)
class KeyRange:
    """Half-open key interval [start, end); ``end=None`` means +infinity."""

    start: bytes
    end: bytes | None

    def contains(self, key: bytes) -> bool:
        """Whether ``key`` falls in this range."""
        if key < self.start:
            return False
        return self.end is None or key < self.end

    def __repr__(self) -> str:
        end = "+inf" if self.end is None else self.end
        return f"KeyRange[{self.start!r}, {end!r})"


def split_key_domain(domain_max: int, n_tablets: int, key_width: int = 12) -> list[KeyRange]:
    """Evenly split an integer key domain [0, domain_max) into ranges.

    Keys are assumed to be zero-padded decimal strings of ``key_width``
    digits (the YCSB convention this reproduction uses; the paper draws
    keys from a domain of 2*10^9).
    """
    if n_tablets < 1:
        raise ValueError("need at least one tablet")
    boundaries = [domain_max * i // n_tablets for i in range(n_tablets + 1)]
    ranges = []
    for i in range(n_tablets):
        start = str(boundaries[i]).zfill(key_width).encode()
        end = (
            None
            if i == n_tablets - 1
            else str(boundaries[i + 1]).zfill(key_width).encode()
        )
        ranges.append(KeyRange(start if i else b"", end))
    return ranges


@dataclass(frozen=True)
class QueryTrace:
    """One query class in the workload trace.

    Attributes:
        columns: columns the query touches.
        frequency: relative weight of the query in the workload.
    """

    columns: frozenset[str]
    frequency: float = 1.0


class VerticalPartitioner:
    """Chooses column groups minimizing workload I/O cost.

    The cost of an assignment follows the paper: for each query, every
    group that overlaps the query's columns must be fetched in full, and
    each group fetched costs one partition access (a seek) on top of its
    transferred width::

        cost = sum over queries q of freq(q) *
               sum over groups g with g ∩ q.columns != ∅ of
                   (access_overhead + width(g))

    Args:
        column_widths: estimated bytes per column per row (drives the
            width term).
        access_overhead: fixed cost per group a query touches (models the
            extra seek of reading one more physical partition).
        exhaustive_limit: schemas up to this many columns are solved by
            exhaustive set-partition enumeration (Bell-number growth);
            larger schemas use greedy pairwise merging.
    """

    def __init__(
        self,
        column_widths: dict[str, int],
        access_overhead: float = 16.0,
        exhaustive_limit: int = 8,
    ) -> None:
        if not column_widths:
            raise ValueError("need at least one column")
        self._widths = dict(column_widths)
        self._overhead = access_overhead
        self._limit = exhaustive_limit

    def cost(self, partition: list[frozenset[str]], trace: list[QueryTrace]) -> float:
        """Workload I/O cost of a candidate grouping."""
        group_width = {group: sum(self._widths[c] for c in group) for group in partition}
        total = 0.0
        for query in trace:
            for group in partition:
                if group & query.columns:
                    total += query.frequency * (self._overhead + group_width[group])
        return total

    def partition(self, trace: list[QueryTrace]) -> list[frozenset[str]]:
        """Best grouping of all columns for ``trace``."""
        columns = sorted(self._widths)
        if len(columns) <= self._limit:
            best = min(
                self._set_partitions(columns),
                key=lambda p: (self.cost(p, trace), len(p)),
            )
            return best
        return self._greedy(columns, trace)

    def build_schema(
        self, table: str, key_column: str, trace: list[QueryTrace]
    ) -> TableSchema:
        """Convenience: run :meth:`partition` and wrap it into a schema."""
        groups = []
        for i, group_cols in enumerate(
            sorted(self.partition(trace), key=lambda g: sorted(g))
        ):
            groups.append(ColumnGroup(name=f"cg{i}", columns=tuple(sorted(group_cols))))
        return TableSchema(name=table, key_column=key_column, groups=tuple(groups))

    @staticmethod
    def _set_partitions(columns: list[str]):
        """Yield every set partition of ``columns``."""
        if not columns:
            yield []
            return
        head, rest = columns[0], columns[1:]
        for sub in VerticalPartitioner._set_partitions(rest):
            # head joins an existing block...
            for i in range(len(sub)):
                yield sub[:i] + [sub[i] | {head}] + sub[i + 1 :]
            # ...or forms its own block.
            yield [frozenset({head})] + sub

    def _greedy(
        self, columns: list[str], trace: list[QueryTrace]
    ) -> list[frozenset[str]]:
        """Start fully decomposed; merge the pair that helps most until no
        merge reduces cost."""
        partition = [frozenset({c}) for c in columns]
        current = self.cost(partition, trace)
        improved = True
        while improved and len(partition) > 1:
            improved = False
            best_pair: tuple[int, int] | None = None
            best_cost = current
            for i in range(len(partition)):
                for j in range(i + 1, len(partition)):
                    candidate = (
                        [p for k, p in enumerate(partition) if k not in (i, j)]
                        + [partition[i] | partition[j]]
                    )
                    cost = self.cost(candidate, trace)
                    if cost < best_cost:
                        best_cost = cost
                        best_pair = (i, j)
            if best_pair is not None:
                i, j = best_pair
                merged = partition[i] | partition[j]
                partition = [p for k, p in enumerate(partition) if k not in (i, j)]
                partition.append(merged)
                current = best_cost
                improved = True
        return partition
