"""The tablet server's read buffer (§3.6.2).

One buffer per tablet server, byte-bounded, holding recently written and
recently read record versions.  "The read buffer is only for improving
read performance" — unlike HBase's memtable it holds no data that is not
already durable in the log, so it is purely optional (its existence and
size are configurable) and never needs flushing.

Only the *latest* version of a record is cached; historical reads always
go through the index to the log.
"""

from __future__ import annotations

from repro.util.lru import LRUCache, ReplacementPolicy

CacheKey = tuple[str, str, bytes]  # (table, group, key)


class ReadCache:
    """Byte-bounded cache of latest record versions.

    Args:
        capacity_bytes: maximum total size of cached values.
        policy: replacement strategy; defaults to LRU as in the paper,
            with the abstract interface allowing plug-in strategies.
    """

    def __init__(
        self,
        capacity_bytes: int,
        policy: ReplacementPolicy[CacheKey] | None = None,
    ) -> None:
        self._cache: LRUCache[CacheKey, tuple[int, bytes]] = LRUCache(
            byte_capacity=capacity_bytes,
            sizer=lambda versioned: len(versioned[1]) + 24,
            policy=policy,
        )

    def get(self, table: str, group: str, key: bytes) -> tuple[int, bytes] | None:
        """Cached (timestamp, value) of the latest version, or None."""
        return self._cache.get((table, group, key))

    def put(self, table: str, group: str, key: bytes, timestamp: int, value: bytes) -> None:
        """Cache a version if it is at least as new as the cached one."""
        cached = self._cache.peek((table, group, key))
        if cached is None or cached[0] <= timestamp:
            self._cache.put((table, group, key), (timestamp, value))

    def invalidate(self, table: str, group: str, key: bytes) -> None:
        """Drop the cached version (deletes must not serve stale data)."""
        self._cache.remove((table, group, key))

    def clear(self) -> None:
        """Drop everything (server crash simulation)."""
        self._cache.clear()

    @property
    def hits(self) -> int:
        """Number of cache hits so far."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Number of cache misses so far."""
        return self._cache.misses

    @property
    def bytes_used(self) -> int:
        """Current cached payload bytes."""
        return self._cache.bytes_used

    def __len__(self) -> int:
        return len(self._cache)
