"""Log-shipping read replicas (Taurus-style, over the shared log).

LogBase already replicates every log segment through the DFS; a follower
therefore needs no owner involvement to reconstruct a tablet's state — it
tails the owner's segment files straight from the DFS on its *own*
machine (charging its own clock and warming its own block cache), replays
them into a private :class:`MultiversionIndex` per column group, and
serves bounded-staleness reads.

Two classes:

* :class:`FollowerTablet` — the replica of one tablet on one non-owner
  server: per-group indexes, the replication watermark (highest applied
  version/commit timestamp), and ``caught_up_at`` (the follower-clock
  instant of the last fully drained tail pass, which is what bounded
  staleness is judged against).
* :class:`LogTailer` — one per (follower server, owner) pair, shared by
  every FollowerTablet that server hosts for that owner, because the
  owner keeps *a single log instance* for all its tablets (§3.4): one
  tail pass feeds them all.

Tailing protocol.  The owner's log is an append stream of unsorted
``segment-*.log`` files plus compaction-produced ``sorted-*.log`` files
(slim layout, old data re-emitted in key order).  The tailer keeps a
byte cursor over the unsorted stream — segment N+1 is only created after
N closed, so once a higher unsorted segment exists the lower one is
immutable — and scans each sorted segment exactly once when it appears.
Sorted segments matter for two reasons: they re-emit live versions under
*new* pointers (the originals are about to be retired, so the follower's
index entries would dangle), and they carry re-emitted tombstones.
Replay mirrors recovery's redo exactly: commit-gated transactional
records, immediate auto-commits, and a persistent per-tailer tombstone
map so out-of-file-order tombstones cannot resurrect deleted versions.
``insert`` replaces at (key, timestamp), so replay is idempotent — a
fresh subscriber simply resets the cursor and the whole stream replays.

A read that chases a pointer into a segment the owner retired between
tail passes raises :class:`FollowerLaggingError`; the client falls back
to the owner and the next tail pass heals the pointer from the sorted
segment that replaced it.
"""

from __future__ import annotations

from repro.config import LogBaseConfig
from repro.core.tablet import Tablet
from repro.dfs.filesystem import DFS
from repro.index.blink import BLinkTreeIndex
from repro.index.interface import MultiversionIndex
from repro.obs.trace import span
from repro.sim.machine import Machine
from repro.sim.metrics import (
    REPLICA_LAG_RECORDS,
    REPLICA_TAIL_BATCHES,
    SPAN_FOLLOWER_TAIL,
)
from repro.wal.record import LogPointer, LogRecord, RecordType
from repro.wal.repository import LogRepository


class FollowerTablet:
    """Read-only replica of one tablet on a non-owner server.

    Attributes:
        tablet: the tablet being replicated.
        owner_name: the tablet server whose log is being tailed.
        epoch: the migration fence epoch this subscription was created
            under (``fence_epochs["mig-{tablet_id}"]``).  An ownership
            change bumps the epoch, so a follower of the deposed owner is
            torn down and re-pointed rather than silently applying the
            old owner's post-fence records.
        watermark: highest version/commit timestamp applied to this
            replica.  A follower read never returns data newer than this.
        caught_up_at: follower-clock instant of the last tail pass that
            fully drained the owner's log (None until the first one).
            Bounded staleness is ``now - caught_up_at``: everything the
            owner committed before that instant is visible here.
    """

    def __init__(self, tablet: Tablet, owner_name: str, epoch: int) -> None:
        self.tablet = tablet
        self.owner_name = owner_name
        self.epoch = epoch
        self.watermark = 0
        self.caught_up_at: float | None = None
        self._indexes: dict[str, MultiversionIndex] = {
            group: BLinkTreeIndex() for group in tablet.schema.group_names
        }

    def index(self, group: str) -> MultiversionIndex:
        """The replica index for one column group."""
        index = self._indexes.get(group)
        if index is None:
            index = BLinkTreeIndex()
            self._indexes[group] = index
        return index

    def lag(self, now: float) -> float:
        """Seconds of staleness at ``now`` (inf before the first drain)."""
        if self.caught_up_at is None:
            return float("inf")
        return max(0.0, now - self.caught_up_at)

    def entry_count(self) -> int:
        """Total index entries across groups (stats/diagnostics)."""
        return sum(len(index) for index in self._indexes.values())


class LogTailer:
    """Tails one owner's log directory for all of a server's followers.

    The tailer owns a read-only :class:`LogRepository` handle reattached
    over the owner's log root on the *follower's* machine: every byte
    scanned and every pointer chased is charged to the follower's clock
    and cached in the follower's block cache — the owner is never
    involved (the whole point of log-shipping replicas).
    """

    def __init__(
        self, dfs: DFS, machine: Machine, owner_name: str, config: LogBaseConfig
    ) -> None:
        self.owner_name = owner_name
        self._machine = machine
        self.repo = LogRepository.reattach(
            dfs,
            machine,
            f"/logbase/{owner_name}/log",
            config.segment_size,
            coalesce_gap=config.read_coalesce_gap,
            scan_prefetch=config.scan_prefetch_bytes,
        )
        self.members: dict[str, FollowerTablet] = {}  # tablet id -> replica
        # Byte cursor over the unsorted append stream: next record starts
        # at offset `_cursor[1]` of segment `_cursor[0]`.
        self._cursor: tuple[int, int] = (0, 0)
        # Per-sorted-segment resume offsets and the set fully consumed.
        self._sorted_progress: dict[int, int] = {}
        self._sorted_done: set[int] = set()
        # Commit-gated transactional records buffered until their COMMIT
        # (mirrors recovery's redo), and the persistent tombstone map that
        # keeps out-of-file-order replay resurrection-safe.
        self._pending: dict[int, list[tuple[LogPointer, LogRecord]]] = {}
        self._tombstones: dict[tuple[str, str, bytes], int] = {}
        # Highest committed timestamp the stream has applied; synced into
        # every member's watermark on a fully drained pass.
        self._stream_watermark = 0

    # -- membership -----------------------------------------------------------

    def subscribe(self, follower: FollowerTablet) -> None:
        """Add a replica and restart the stream from the beginning.

        Replay is idempotent for existing members (insert replaces at
        (key, timestamp); the tombstone map is rebuilt as the stream
        re-delivers the same markers), and the reset is what lets a
        replica created mid-stream see records the shared cursor already
        passed.  Every member — not just the new one — stops serving
        until the re-replay fully drains: the batch-bounded re-replay can
        transiently re-insert a WRITE whose shadowing INVALIDATE only
        lands in a later pass, and a member still judged fresh from its
        pre-reset drain would serve that resurrected deleted version."""
        self.members[str(follower.tablet.tablet_id)] = follower
        for member in self.members.values():
            member.caught_up_at = None
        self._cursor = (0, 0)
        self._sorted_progress.clear()
        self._sorted_done.clear()
        self._pending.clear()
        self._tombstones.clear()
        self._stream_watermark = 0

    def unsubscribe(self, tablet_id: str) -> None:
        """Drop a replica (teardown on ownership change or re-placement)."""
        self.members.pop(str(tablet_id), None)

    # -- tailing ---------------------------------------------------------------

    def tail(self, batch_limit: int) -> tuple[int, bool]:
        """One tail pass: apply up to ``batch_limit`` new log records.

        Returns ``(applied, drained)`` where ``drained`` means the pass
        consumed everything the owner's log currently holds — only then do
        the members' ``caught_up_at`` (and watermark, via the stream
        watermark) advance, because bounded staleness promises a complete
        prefix, not a sample.
        """
        with span(SPAN_FOLLOWER_TAIL, self._machine, owner=self.owner_name):
            self.repo.refresh_from_dfs()
            applied = 0
            scanned = 0
            drained = True
            unsorted: list[int] = []
            sorted_segs: list[int] = []
            for file_no in self.repo.segments():
                name = self.repo.segment_path(file_no).rsplit("/", 1)[-1]
                (sorted_segs if name.startswith("sorted-") else unsorted).append(
                    file_no
                )
            # Sorted segments retired by a later compaction round drop out
            # of the bookkeeping with them.
            live_sorted = set(sorted_segs)
            self._sorted_done &= live_sorted
            for gone in [n for n in self._sorted_progress if n not in live_sorted]:
                del self._sorted_progress[gone]

            # 1. The unsorted append stream, in file order from the cursor.
            cursor_file, cursor_offset = self._cursor
            stream = [n for n in unsorted if n > cursor_file]
            if cursor_file in unsorted:
                stream.insert(0, cursor_file)
            for file_no in stream:
                start = cursor_offset if file_no == cursor_file else 0
                for pointer, record in self.repo.scan_segment(
                    file_no, start_offset=start
                ):
                    if scanned >= batch_limit:
                        drained = False
                        break
                    scanned += 1
                    applied += self._consume(pointer, record, committed=False)
                    self._cursor = (file_no, pointer.offset + pointer.size)
                if not drained:
                    break

            # 2. Sorted segments, each consumed exactly once as it appears
            # (new pointers for data whose original segments are being
            # retired, plus re-emitted tombstones).  Their content is
            # already-committed, so records apply directly.
            if drained:
                for file_no in sorted_segs:
                    if file_no in self._sorted_done:
                        continue
                    start = self._sorted_progress.get(file_no, 0)
                    complete = True
                    for pointer, record in self.repo.scan_segment(
                        file_no, start_offset=start
                    ):
                        if scanned >= batch_limit:
                            drained = False
                            complete = False
                            break
                        scanned += 1
                        applied += self._consume(pointer, record, committed=True)
                        self._sorted_progress[file_no] = (
                            pointer.offset + pointer.size
                        )
                    if complete:
                        self._sorted_done.add(file_no)
                        self._sorted_progress.pop(file_no, None)
                    if not drained:
                        break

            if drained:
                now = self._machine.clock.now
                for member in self.members.values():
                    member.watermark = max(member.watermark, self._stream_watermark)
                    member.caught_up_at = now
            if applied:
                self._machine.counters.add(REPLICA_LAG_RECORDS, applied)
                self._machine.counters.add(REPLICA_TAIL_BATCHES)
            return applied, drained

    # -- replay (mirrors recovery's redo_scan) --------------------------------

    def _consume(
        self, pointer: LogPointer, record: LogRecord, *, committed: bool
    ) -> int:
        """Route one scanned record; returns how many index effects landed."""
        kind = record.record_type
        if kind is RecordType.WRITE:
            if record.txn_id == 0 or committed:
                return self._apply_write(record, pointer)
            self._pending.setdefault(record.txn_id, []).append((pointer, record))
            return 0
        if kind is RecordType.INVALIDATE:
            if record.txn_id == 0 or committed:
                return self._apply_delete(record)
            self._pending.setdefault(record.txn_id, []).append((pointer, record))
            return 0
        if kind is RecordType.COMMIT:
            applied = 0
            for buffered_pointer, buffered in self._pending.pop(record.txn_id, []):
                if buffered.record_type is RecordType.WRITE:
                    applied += self._apply_write(buffered, buffered_pointer)
                else:
                    applied += self._apply_delete(buffered)
            self._stream_watermark = max(self._stream_watermark, record.timestamp)
            return applied
        if kind is RecordType.ABORT:
            self._pending.pop(record.txn_id, None)
        return 0

    def _member_for(self, table: str, key: bytes) -> FollowerTablet | None:
        for member in self.members.values():
            if member.tablet.table == table and member.tablet.covers(key):
                return member
        return None

    def _apply_write(self, record: LogRecord, pointer: LogPointer) -> int:
        member = self._member_for(record.table, record.key)
        self._stream_watermark = max(self._stream_watermark, record.timestamp)
        if member is None:
            return 0
        slot = (record.table, record.group, record.key)
        if self._tombstones.get(slot, -1) >= record.timestamp:
            return 0  # version shadowed by an already-seen tombstone
        member.index(record.group).insert(record.key, record.timestamp, pointer)
        member.watermark = max(member.watermark, record.timestamp)
        return 1

    def _apply_delete(self, record: LogRecord) -> int:
        slot = (record.table, record.group, record.key)
        self._tombstones[slot] = max(
            self._tombstones.get(slot, -1), record.timestamp
        )
        self._stream_watermark = max(self._stream_watermark, record.timestamp)
        member = self._member_for(record.table, record.key)
        if member is None:
            return 0
        index = member.index(record.group)
        # Kill versions at or below the marker's timestamp only: sorted
        # segments re-emit tombstones out of file order relative to newer
        # surviving versions (same rule as recovery's redo).
        survivors = [
            e for e in index.versions(record.key) if e.timestamp > record.timestamp
        ]
        index.delete_key(record.key)
        for entry in survivors:
            index.insert(entry.key, entry.timestamp, entry.pointer)
        member.watermark = max(member.watermark, record.timestamp)
        return 1
