"""Checkpointing (§3.8): persist in-memory indexes for fast recovery.

A checkpoint writes two things to the DFS: (1) every in-memory index
flushed to an index file, and (2) a *checkpoint block* recording the
current position in the log and the LSN of the latest write reflected in
the persisted indexes.  Recovery reloads the index files and redoes only
the log suffix after that position.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.core.tablet_server import TabletServer
from repro.dfs.filesystem import DFS
from repro.index.persist import load_index_file, write_index_file
from repro.sim.failure import CP_CHECKPOINT_MID, crash_point
from repro.wal.record import LogPointer


@dataclass(frozen=True)
class CheckpointBlock:
    """Contents of the checkpoint block.

    Attributes:
        lsn: LSN of the latest write whose effect is in the index files.
        position: log position recovery resumes scanning from.
        index_files: (tablet, group) -> DFS path of the index file.
    """

    lsn: int
    position: LogPointer
    index_files: dict[str, str]  # "tablet|group" -> path

    def to_bytes(self) -> bytes:
        return json.dumps(
            {
                "lsn": self.lsn,
                "file_no": self.position.file_no,
                "offset": self.position.offset,
                "index_files": self.index_files,
            }
        ).encode()

    @classmethod
    def from_bytes(cls, payload: bytes) -> "CheckpointBlock":
        doc = json.loads(payload.decode())
        return cls(
            lsn=doc["lsn"],
            position=LogPointer(doc["file_no"], doc["offset"], 0),
            index_files=dict(doc["index_files"]),
        )


class CheckpointManager:
    """Writes and reloads checkpoints for one tablet server."""

    def __init__(self, dfs: DFS, server: TabletServer) -> None:
        self._dfs = dfs
        self._server = server
        self._root = f"/logbase/{server.name}/ckpt"
        server.set_checkpoint_hook(lambda _srv: self.write_checkpoint())

    def _block_path(self) -> str:
        return f"{self._root}/checkpoint.block"

    def write_checkpoint(self) -> CheckpointBlock:
        """Flush every index to the DFS and persist the checkpoint block.

        Returns the block that was written.
        """
        server = self._server
        index_files: dict[str, str] = {}
        position = server.log.end_pointer()
        lsn = server.log.next_lsn - 1
        for (tablet_id, group), index in server.indexes().items():
            # A crash here leaves some index files written but no new
            # checkpoint block — the previous checkpoint stays consistent
            # and recovery redoes from it (the block is the commit point).
            crash_point(CP_CHECKPOINT_MID, server=server.name)
            path = f"{self._root}/{tablet_id}.{group}.idx"
            write_index_file(self._dfs, path, server.machine, index)
            index_files[f"{tablet_id}|{group}"] = path
        block = CheckpointBlock(lsn=lsn, position=position, index_files=index_files)
        block_path = self._block_path()
        if self._dfs.exists(block_path):
            self._dfs.delete(block_path)
        writer = self._dfs.create(block_path, server.machine)
        writer.append(block.to_bytes())
        writer.close()
        return block

    def has_checkpoint(self) -> bool:
        """Whether a checkpoint block exists for this server."""
        return self._dfs.exists(self._block_path())

    def read_block(self) -> CheckpointBlock:
        """Read the checkpoint block (without loading index files)."""
        payload = self._dfs.open(self._block_path(), self._server.machine).read_all()
        return CheckpointBlock.from_bytes(payload)

    def load_tablet(self, block: CheckpointBlock, tablet_id: str) -> int:
        """Reload only one tablet's index files from ``block``.

        Fast recovery staggers checkpoint reloads per tablet so each
        tablet pays only its own DFS reads before it can serve; the
        caller restores the LSN cursor once for the whole pass.  Returns
        the number of index files loaded.
        """
        server = self._server
        loaded = 0
        for slot, path in block.index_files.items():
            tablet_id_str, group = slot.split("|")
            if tablet_id_str != tablet_id:
                continue
            tablet = server.tablets.get(tablet_id_str)
            if tablet is None:
                continue  # tablet moved elsewhere; its new owner loads it
            index = server._ensure_index(tablet.tablet_id, group)
            load_index_file(self._dfs, path, server.machine, index)
            loaded += 1
        return loaded

    def load_checkpoint(self) -> CheckpointBlock:
        """Reload the persisted index files into the server's indexes.

        The server must already have its tablets assigned (the master
        re-assigns them on restart) so the index shells exist.
        """
        block = self.read_block()
        server = self._server
        for slot, path in block.index_files.items():
            tablet_id_str, group = slot.split("|")
            tablet = server.tablets.get(tablet_id_str)
            if tablet is None:
                continue  # tablet moved elsewhere; its new owner loads it
            index = server._ensure_index(tablet.tablet_id, group)
            load_index_file(self._dfs, path, server.machine, index)
        server.log.set_next_lsn(block.lsn + 1)
        return block
