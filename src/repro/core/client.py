"""Client library: routing with a location cache (§3.3).

"A new client first contacts the Zookeeper to retrieve the master node
information ... and finally retrieve data from the tablet server that
maintains the records of its interest.  The information of both master
node and tablet servers are cached" — so after warm-up the master is off
the data path.  RPC costs are charged to the client's machine; the
server-side work is charged to the server's machine by the server itself.
"""

from __future__ import annotations

from repro.core.master import Master
from repro.core.schema import decode_group_value, encode_group_value
from repro.core.tablet import Tablet
from repro.errors import ServerDownError, TabletNotFound
from repro.sim.machine import Machine
from repro.sim.metrics import CLIENT_RETRIES

_REQUEST_OVERHEAD = 64  # approximate request framing bytes


class Client:
    """A LogBase client running on (or near) a cluster machine.

    Args:
        master: the active master (location lookups).
        machine: the machine this client charges RPC costs to.
        retry_limit: times an operation that hit a dead server is retried
            after refreshing locations, with sim-clock-charged backoff.
            0 (the seed behaviour) raises immediately.
        retry_backoff: simulated seconds before the first retry; doubles
            on each further attempt.
    """

    def __init__(
        self,
        master: Master,
        machine: Machine,
        retry_limit: int = 0,
        retry_backoff: float = 0.05,
    ) -> None:
        self._master = master
        self._machine = machine
        self._retry_limit = retry_limit
        self._retry_backoff = retry_backoff
        # table -> list of (server name, tablet), cached after first lookup
        self._locations: dict[str, list[tuple[str, Tablet]]] = {}
        self.last_op_seconds = 0.0

    # -- routing ------------------------------------------------------------------

    def _locate(self, table: str, key: bytes) -> tuple[str, Tablet]:
        cached = self._locations.get(table)
        if cached is None:
            # One metadata RPC to the master, then cached.
            self._machine.clock.advance(
                self._machine.network.rpc_cost(_REQUEST_OVERHEAD, 1024)
            )
            cached = self._master.locations(table)
            self._locations[table] = cached
        for server_name, tablet in cached:
            if tablet.covers(key):
                return server_name, tablet
        raise TabletNotFound(f"{table}:{key!r}")

    def invalidate_cache(self, table: str | None = None) -> None:
        """Drop cached locations (stale after failover)."""
        if table is None:
            self._locations.clear()
        else:
            self._locations.pop(table, None)

    def _server_for(self, table: str, key: bytes):
        name, _ = self._locate(table, key)
        try:
            return self._master.server(name)
        except KeyError:
            self.invalidate_cache(table)
            name, _ = self._locate(table, key)
            return self._master.server(name)

    def _call(self, server, request_bytes: int, response_bytes: int, op) :
        """Run ``op`` against ``server``, charging RPC and measuring the
        server-side latency of this operation."""
        start = server.machine.clock.now
        rpc = self._machine.network.rpc_cost(
            request_bytes, response_bytes, local=server.machine is self._machine
        )
        self._machine.clock.advance(rpc)
        try:
            result = op()
        except ServerDownError:
            self.invalidate_cache()
            raise
        self.last_op_seconds = (server.machine.clock.now - start) + rpc
        return result

    def _routed_call(
        self, table: str, key: bytes, request_bytes: int, response_bytes: int, op_factory
    ):
        """Route, call, and retry once on a stale location.

        After a tablet moves (rebalance, failover, decommission) the
        cached location points at a server that no longer owns the key;
        that server answers TabletNotFound, the client refreshes its
        cache from the master and retries — "the information ... only
        need to be looked up ... when the cache is stale" (§3.3).

        A dead server (ServerDownError) is additionally retried up to
        ``retry_limit`` times with exponential backoff charged to the
        client's clock, covering the window in which the master fails the
        server's tablets over to healthy adopters.  With the default
        limit of 0 the seed behaviour is unchanged: the cache is dropped
        and the error propagates.
        """
        attempts = 0
        while True:
            try:
                server = self._server_for(table, key)
                try:
                    return self._call(
                        server, request_bytes, response_bytes, op_factory(server)
                    )
                except TabletNotFound:
                    self.invalidate_cache(table)
                    server = self._server_for(table, key)
                    return self._call(
                        server, request_bytes, response_bytes, op_factory(server)
                    )
            except ServerDownError:
                if attempts >= self._retry_limit:
                    raise
                attempts += 1
                self._machine.counters.add(CLIENT_RETRIES)
                self._machine.clock.advance(
                    self._retry_backoff * (2 ** (attempts - 1))
                )

    # -- typed API -----------------------------------------------------------------------

    def put(self, table: str, key: bytes, row: dict[str, dict[str, bytes]]) -> int:
        """Write column values grouped by column group.

        Args:
            row: ``{group name: {column: value bytes}}``.

        Returns the version timestamp.
        """
        payload = {
            group: encode_group_value(columns) for group, columns in row.items()
        }
        size = sum(len(v) for v in payload.values()) + len(key)
        return self._routed_call(
            table, key, size + _REQUEST_OVERHEAD, 16,
            lambda server: lambda: server.write(table, key, payload),
        )

    def get(
        self, table: str, key: bytes, group: str, *, as_of: int | None = None
    ) -> dict[str, bytes] | None:
        """Read one column group of a record; None if absent."""
        result = self._routed_call(
            table, key, _REQUEST_OVERHEAD + len(key), 1024,
            lambda server: lambda: server.read(table, key, group, as_of=as_of),
        )
        if result is None:
            return None
        _, value = result
        return decode_group_value(value)

    def get_row(self, table: str, key: bytes) -> dict[str, dict[str, bytes]] | None:
        """Reconstruct a whole tuple by collecting every column group
        (§3.2: reconstruction uses the primary key across groups)."""
        schema = self._master.schema(table)
        row: dict[str, dict[str, bytes]] = {}
        for group in schema.group_names:
            columns = self.get(table, key, group)
            if columns is not None:
                row[group] = columns
        return row or None

    def delete(self, table: str, key: bytes, group: str | None = None) -> None:
        """Delete a record (one group, or every group when None)."""
        schema = self._master.schema(table)
        groups = [group] if group is not None else schema.group_names
        for group_name in groups:
            self._routed_call(
                table, key, _REQUEST_OVERHEAD + len(key), 16,
                lambda server, g=group_name: lambda: server.delete(table, key, g),
            )

    def scan(
        self,
        table: str,
        group: str,
        start_key: bytes,
        end_key: bytes,
        *,
        as_of: int | None = None,
    ) -> list[tuple[bytes, dict[str, bytes]]]:
        """Range scan [start_key, end_key) across all covering tablets.

        Sub-ranges on different servers execute in parallel in a real
        deployment; here each server charges its own clock, so the
        makespan accounting captures the parallelism.
        """
        if table not in self._locations:
            self._locate(table, start_key)
        results: list[tuple[bytes, dict[str, bytes]]] = []
        for server_name, tablet in self._locations[table]:
            if tablet.key_range.end is not None and tablet.key_range.end <= start_key:
                continue
            if end_key <= tablet.key_range.start:
                continue
            server = self._master.server(server_name)
            rows = self._call(
                server, _REQUEST_OVERHEAD, 4096,
                lambda s=server: list(
                    s.range_scan(table, group, start_key, end_key, as_of=as_of)
                ),
            )
            for key, _, value in rows:
                results.append((key, decode_group_value(value)))
        results.sort(key=lambda pair: pair[0])
        return results

    # -- raw byte API (benchmarks; payloads are opaque 1 KB blobs) ---------------------------

    def put_raw(self, table: str, key: bytes, group: str, value: bytes) -> int:
        """Write one opaque group payload (no column encoding)."""
        return self._routed_call(
            table, key, len(value) + len(key) + _REQUEST_OVERHEAD, 16,
            lambda server: lambda: server.write(table, key, {group: value}),
        )

    def get_raw(
        self, table: str, key: bytes, group: str, *, as_of: int | None = None
    ) -> bytes | None:
        """Read one opaque group payload."""
        result = self._routed_call(
            table, key, _REQUEST_OVERHEAD + len(key), 1024,
            lambda server: lambda: server.read(table, key, group, as_of=as_of),
        )
        return None if result is None else result[1]
