"""Client library: routing with a location cache (§3.3).

"A new client first contacts the Zookeeper to retrieve the master node
information ... and finally retrieve data from the tablet server that
maintains the records of its interest.  The information of both master
node and tablet servers are cached" — so after warm-up the master is off
the data path.  RPC costs are charged to the client's machine; the
server-side work is charged to the server's machine by the server itself.
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.core.master import Master
from repro.core.schema import decode_group_value, encode_group_value
from repro.core.tablet import Tablet
from repro.errors import (
    FollowerLaggingError,
    ServerDownError,
    ServerOverloadedError,
    TabletMigratingError,
    TabletNotFound,
    TabletRecoveringError,
)
from repro.obs.trace import root_span, span
from repro.sim.deadline import Deadline, deadline_scope
from repro.sim.health import CircuitBreaker, GrayPolicy
from repro.sim.machine import Machine
from repro.sim.metrics import (
    BREAKER_TRIPS,
    CLIENT_BREAKER_WAITS,
    CLIENT_RETRIES,
    DEADLINES_EXCEEDED,
    SPAN_CLIENT_BREAKER_WAIT,
    SPAN_CLIENT_RETRY,
    SPAN_RPC_SERVER,
)

_REQUEST_OVERHEAD = 64  # approximate request framing bytes

_NO_TRACE = nullcontext()


class Client:
    """A LogBase client running on (or near) a cluster machine.

    Args:
        master: the active master (location lookups).
        machine: the machine this client charges RPC costs to.
        retry_limit: times an operation that hit a dead or overloaded
            server is retried after refreshing locations, with
            sim-clock-charged backoff.  0 (the seed behaviour) raises
            immediately.
        retry_backoff: simulated seconds before the first retry; doubles
            on each further attempt.
        retry_backoff_max: cap on any single backoff wait (the doubling
            stops growing here).
        op_deadline: per-operation time budget in simulated seconds,
            propagated to the server and DFS read paths; None (the
            default) disables deadlines entirely.
        gray_policy: gray-resilience policy; when it enables breakers the
            client keeps a per-server latency circuit breaker and waits
            out an open breaker's cooldown before probing the server.
        tracing: open a root span per client operation (put/get/delete/
            scan); requires a tracer installed by the cluster to record
            anything.
        read_replicas: route eligible reads across the tablet's follower
            replicas (deterministic rotation that includes the owner),
            falling back to the owner when a follower is lagging or down.
            The rotation composes with the breakers above: a limping
            follower's reads still pay its breaker cooldown, biasing the
            client away from it.
        replica_read_fraction: share of reads eligible for follower
            routing (a YCSB-style 95/5 workload keeps its 5% of writes
            and any fraction-excluded reads on the owner).
        replica_max_staleness: per-request staleness bound forwarded to
            followers; None uses the server-side configured default.
    """

    def __init__(
        self,
        master: Master,
        machine: Machine,
        retry_limit: int = 0,
        retry_backoff: float = 0.05,
        retry_backoff_max: float = 30.0,
        op_deadline: float | None = None,
        gray_policy: GrayPolicy | None = None,
        tracing: bool = False,
        read_replicas: bool = False,
        replica_read_fraction: float = 1.0,
        replica_max_staleness: float | None = None,
    ) -> None:
        self._master = master
        self._machine = machine
        self._tracing = tracing
        self._retry_limit = retry_limit
        self._retry_backoff = retry_backoff
        self._retry_backoff_max = retry_backoff_max
        self._op_deadline = op_deadline
        self._gray = gray_policy
        # server name -> breaker, when the gray policy enables them.
        self._breakers: dict[str, CircuitBreaker] | None = (
            {} if gray_policy is not None and gray_policy.breaker_enabled else None
        )
        # table -> list of (server name, tablet), cached after first lookup
        self._locations: dict[str, list[tuple[str, Tablet]]] = {}
        self._read_replicas = read_replicas
        self._replica_read_fraction = replica_read_fraction
        self._replica_max_staleness = replica_max_staleness
        # table -> {tablet id: [follower server names]}, cached like
        # ``_locations`` and invalidated alongside it on ownership change.
        self._follower_routes: dict[str, dict[str, list[str]]] = {}
        # Deterministic read-rotation counter (no RNG: replays are stable).
        self._replica_seq = 0
        self.last_op_seconds = 0.0

    def _op_span(self, name: str, **attrs):
        """A root span for one client operation, or a no-op when this
        client is untraced (the per-call cost of tracing-off)."""
        if self._tracing:
            return root_span(name, self._machine, **attrs)
        return _NO_TRACE

    # -- routing ------------------------------------------------------------------

    def _locate(self, table: str, key: bytes) -> tuple[str, Tablet]:
        cached = self._locations.get(table)
        if cached is None:
            # One metadata RPC to the master, then cached.
            self._machine.clock.advance(
                self._machine.network.rpc_cost(_REQUEST_OVERHEAD, 1024)
            )
            cached = self._master.locations(table)
            self._locations[table] = cached
        for server_name, tablet in cached:
            if tablet.covers(key):
                return server_name, tablet
        raise TabletNotFound(f"{table}:{key!r}")

    def invalidate_cache(self, table: str | None = None) -> None:
        """Drop cached locations (stale after failover)."""
        if table is None:
            self._locations.clear()
        else:
            self._locations.pop(table, None)

    def invalidate_follower_routes(self, table: str | None = None) -> None:
        """Drop cached follower routes.

        Called alongside owner-route invalidation on
        :class:`TabletMigratingError`: an ownership change tears the
        tablet's followers down under a bumped fence epoch, so a cached
        route would keep sending reads to a torn-down (or re-pointing)
        follower until every read redirected — re-resolving from the
        master picks up the re-placed followers instead."""
        if table is None:
            self._follower_routes.clear()
        else:
            self._follower_routes.pop(table, None)

    def _follower_route(self, table: str, tablet_id: str) -> list[str]:
        routes = self._follower_routes.get(table)
        if routes is None:
            # One metadata RPC to the master, then cached (same contract
            # as the owner-location cache).
            self._machine.clock.advance(
                self._machine.network.rpc_cost(_REQUEST_OVERHEAD, 1024)
            )
            routes = self._master.follower_locations(table)
            self._follower_routes[table] = routes
        return routes.get(tablet_id, [])

    def _pick_follower(self, table: str, key: bytes) -> str | None:
        """The follower a replica-routed read should try, or None for the
        owner.

        Deterministic rotation over ``followers + [owner]`` — including
        the owner keeps it serving its fair share instead of idling while
        followers saturate — with ``replica_read_fraction`` carving out
        the reads that must stay on the owner entirely."""
        seq = self._replica_seq
        self._replica_seq += 1
        if (seq % 100) >= int(self._replica_read_fraction * 100):
            return None
        owner_name, tablet = self._locate(table, key)
        followers = self._follower_route(table, str(tablet.tablet_id))
        if not followers:
            return None
        rotation = followers + [owner_name]
        name = rotation[seq % len(rotation)]
        return None if name == owner_name else name

    def _replica_read(
        self, table: str, key: bytes, group: str, *, as_of: int | None
    ) -> tuple[int, bytes] | None:
        """Bounded-staleness read: try the rotation's follower once, fall
        back to the owner on lag or failure.

        A lagging follower stays in rotation (lag is transient — the next
        heartbeat advances its tail); a dead one drops out when the
        follower routes are refreshed."""
        request = _REQUEST_OVERHEAD + len(key)
        follower_name = self._pick_follower(table, key)
        if follower_name is not None:
            try:
                server = self._master.server(follower_name)
            except KeyError:
                self.invalidate_follower_routes(table)
                server = None
            if server is not None:
                deadline = (
                    Deadline.after(self._machine.clock, self._op_deadline)
                    if self._op_deadline is not None
                    else None
                )
                try:
                    return self._call(
                        server, request, 1024,
                        lambda: server.follower_read(
                            table, key, group,
                            as_of=as_of,
                            max_staleness=self._replica_max_staleness,
                        ),
                        table=table,
                        deadline=deadline,
                    )
                except (FollowerLaggingError, ServerOverloadedError):
                    pass  # owner fallback; the follower stays in rotation
                except (ServerDownError, TabletNotFound, TabletMigratingError):
                    # _call already dropped the owner-location cache on
                    # ServerDownError; the follower routes are just as
                    # suspect.
                    self.invalidate_follower_routes(table)
        return self._routed_call(
            table, key, request, 1024,
            lambda srv: lambda: srv.read(table, key, group, as_of=as_of),
        )

    def _server_for(self, table: str, key: bytes):
        name, _ = self._locate(table, key)
        try:
            return self._master.server(name)
        except KeyError:
            self.invalidate_cache(table)
            name, _ = self._locate(table, key)
            return self._master.server(name)

    def _breaker_for(self, name: str) -> CircuitBreaker | None:
        if self._breakers is None:
            return None
        breaker = self._breakers.get(name)
        if breaker is None:
            policy = self._gray
            breaker = CircuitBreaker(
                trip_after=policy.breaker_trip_seconds,
                cooldown=policy.breaker_cooldown,
                min_samples=policy.breaker_min_samples,
                alpha=policy.ewma_alpha,
            )
            self._breakers[name] = breaker
        return breaker

    def _call(
        self,
        server,
        request_bytes: int,
        response_bytes: int,
        op,
        *,
        table: str | None = None,
        deadline: Deadline | None = None,
    ):
        """Run ``op`` against ``server``, charging RPC and measuring the
        server-side latency of this operation.

        With a client-side breaker open for ``server``, the client waits
        out the remaining cooldown on its own clock before the half-open
        probe — biasing itself away from a server it has measured to be
        limping.  A live deadline is rebased onto the server's clock for
        the duration of the call (and armed as the ambient deadline so
        log and DFS reads can enforce it), then rebased back.  The
        server's admission controller — when configured — may shed the
        request before any work is done.  ``last_op_seconds`` is recorded
        whether the call succeeds or fails, so health tracking sees
        failure latency too.
        """
        breaker = self._breaker_for(server.name)
        if breaker is not None and not breaker.allow(self._machine.clock.now):
            wait = breaker.remaining_cooldown(self._machine.clock.now)
            if wait > 0:
                self._machine.counters.add(CLIENT_BREAKER_WAITS)
                with span(SPAN_CLIENT_BREAKER_WAIT, self._machine, server=server.name):
                    self._machine.clock.advance(wait)
            breaker.allow(self._machine.clock.now)  # admit the probe
        start = server.machine.clock.now
        rpc = self._machine.network.rpc_cost(
            request_bytes,
            response_bytes,
            local=server.machine is self._machine,
            a=self._machine.name,
            b=server.machine.name,
        )
        self._machine.clock.advance(rpc)
        if deadline is not None:
            deadline.check("client call")
            deadline.rebase(server.machine.clock)
        admission = getattr(server, "admission", None)
        try:
            if admission is not None:
                admission.admit(
                    self._machine.clock.now,
                    server.machine.clock.now,
                    counters=server.machine.counters,
                )
            # The one cross-clock hop the client's clock never pays for:
            # anchored on the server machine, this child span is what the
            # trace tree adds back into end-to-end latency.
            with deadline_scope(deadline), span(
                SPAN_RPC_SERVER, server.machine, server=server.name
            ):
                result = op()
            if admission is not None:
                admission.observe(server.machine.clock.now - start)
            return result
        except ServerDownError:
            self.invalidate_cache(table)
            raise
        finally:
            if deadline is not None:
                deadline.rebase(self._machine.clock)
            self.last_op_seconds = (server.machine.clock.now - start) + rpc
            if breaker is not None and breaker.observe(
                self.last_op_seconds, self._machine.clock.now
            ):
                self._machine.counters.add(BREAKER_TRIPS)

    def _backoff(self, attempts: int) -> float:
        """Exponential backoff for the Nth retry, capped at the
        configured maximum so repeated failures never produce an
        unbounded wait."""
        return min(
            self._retry_backoff * (2 ** (attempts - 1)), self._retry_backoff_max
        )

    def _routed_call(
        self, table: str, key: bytes, request_bytes: int, response_bytes: int, op_factory
    ):
        """Route, call, and retry once on a stale location.

        After a tablet moves (rebalance, failover, decommission) the
        cached location points at a server that no longer owns the key;
        that server answers TabletNotFound, the client refreshes its
        cache from the master and retries — "the information ... only
        need to be looked up ... when the cache is stale" (§3.3).

        A dead server (ServerDownError) is additionally retried up to
        ``retry_limit`` times with capped exponential backoff charged to
        the client's clock, covering the window in which the master fails
        the server's tablets over to healthy adopters.  An overloaded
        server (ServerOverloadedError) is retried within the same limit,
        waiting at least the server's ``retry_after`` hint — the shed was
        a queueing signal, not a failure, so the location cache is kept.
        With the default limit of 0 the seed behaviour is unchanged: the
        error propagates immediately.

        With ``op_deadline`` configured the whole routed operation —
        retries and backoff included — runs under one deadline budget.
        """
        attempts = 0
        deadline = (
            Deadline.after(self._machine.clock, self._op_deadline)
            if self._op_deadline is not None
            else None
        )
        while True:
            if deadline is not None and deadline.expired:
                self._machine.counters.add(DEADLINES_EXCEEDED)
                deadline.check("client operation")
            try:
                server = self._server_for(table, key)
                try:
                    return self._call(
                        server, request_bytes, response_bytes,
                        op_factory(server), table=table, deadline=deadline,
                    )
                except TabletNotFound:
                    self.invalidate_cache(table)
                    server = self._server_for(table, key)
                    return self._call(
                        server, request_bytes, response_bytes,
                        op_factory(server), table=table, deadline=deadline,
                    )
            except ServerDownError:
                if attempts >= self._retry_limit:
                    raise
                attempts += 1
                self._machine.counters.add(CLIENT_RETRIES)
                with span(SPAN_CLIENT_RETRY, self._machine, attempt=attempts):
                    self._machine.clock.advance(self._backoff(attempts))
            except ServerOverloadedError as exc:
                if attempts >= self._retry_limit:
                    raise
                attempts += 1
                self._machine.counters.add(CLIENT_RETRIES)
                with span(SPAN_CLIENT_RETRY, self._machine, attempt=attempts):
                    self._machine.clock.advance(
                        max(exc.retry_after, self._backoff(attempts))
                    )
            except TabletRecoveringError:
                # The tablet is still owned by that server — its redo just
                # has not finished.  Keep the location cache and wait out
                # part of the recovery window with the same backoff.
                if attempts >= self._retry_limit:
                    raise
                attempts += 1
                self._machine.counters.add(CLIENT_RETRIES)
                with span(SPAN_CLIENT_RETRY, self._machine, attempt=attempts):
                    self._machine.clock.advance(self._backoff(attempts))
            except TabletMigratingError:
                # Ownership is (or just was) in motion: the addressed
                # server is inside a migration's fenced flip window, or
                # its lease lapsed because the tablet moved away while it
                # was unreachable.  Either way the cached location may be
                # stale — drop it, back off, and re-resolve from the
                # master.
                if attempts >= self._retry_limit:
                    raise
                attempts += 1
                self.invalidate_cache(table)
                # The fence-epoch bump behind this error also tore down the
                # tablet's followers — a cached follower route would keep
                # pointing reads at them (mirrors the owner-route
                # invalidation above).
                self.invalidate_follower_routes(table)
                self._machine.counters.add(CLIENT_RETRIES)
                with span(SPAN_CLIENT_RETRY, self._machine, attempt=attempts):
                    self._machine.clock.advance(self._backoff(attempts))

    # -- typed API -----------------------------------------------------------------------

    def put(self, table: str, key: bytes, row: dict[str, dict[str, bytes]]) -> int:
        """Write column values grouped by column group.

        Args:
            row: ``{group name: {column: value bytes}}``.

        Returns the version timestamp.
        """
        payload = {
            group: encode_group_value(columns) for group, columns in row.items()
        }
        size = sum(len(v) for v in payload.values()) + len(key)
        with self._op_span("op.put", table=table, bytes=size):
            return self._routed_call(
                table, key, size + _REQUEST_OVERHEAD, 16,
                lambda server: lambda: server.write(table, key, payload),
            )

    def get(
        self, table: str, key: bytes, group: str, *, as_of: int | None = None
    ) -> dict[str, bytes] | None:
        """Read one column group of a record; None if absent."""
        with self._op_span("op.get", table=table, group=group):
            if self._read_replicas:
                result = self._replica_read(table, key, group, as_of=as_of)
            else:
                result = self._routed_call(
                    table, key, _REQUEST_OVERHEAD + len(key), 1024,
                    lambda server: lambda: server.read(table, key, group, as_of=as_of),
                )
        if result is None:
            return None
        _, value = result
        return decode_group_value(value)

    def get_row(self, table: str, key: bytes) -> dict[str, dict[str, bytes]] | None:
        """Reconstruct a whole tuple by collecting every column group
        (§3.2: reconstruction uses the primary key across groups)."""
        schema = self._master.schema(table)
        row: dict[str, dict[str, bytes]] = {}
        for group in schema.group_names:
            columns = self.get(table, key, group)
            if columns is not None:
                row[group] = columns
        return row or None

    def delete(self, table: str, key: bytes, group: str | None = None) -> None:
        """Delete a record (one group, or every group when None)."""
        schema = self._master.schema(table)
        groups = [group] if group is not None else schema.group_names
        with self._op_span("op.delete", table=table):
            for group_name in groups:
                self._routed_call(
                    table, key, _REQUEST_OVERHEAD + len(key), 16,
                    lambda server, g=group_name: lambda: server.delete(table, key, g),
                )

    def scan(
        self,
        table: str,
        group: str,
        start_key: bytes,
        end_key: bytes,
        *,
        as_of: int | None = None,
    ) -> list[tuple[bytes, dict[str, bytes]]]:
        """Range scan [start_key, end_key) across all covering tablets.

        Sub-ranges on different servers execute in parallel in a real
        deployment; here each server charges its own clock, so the
        makespan accounting captures the parallelism.
        """
        return [
            (key, decode_group_value(value))
            for key, value in self._scan_rows(
                table, group, start_key, end_key, as_of
            )
        ]

    def _scan_rows(
        self,
        table: str,
        group: str,
        start_key: bytes,
        end_key: bytes,
        as_of: int | None,
    ) -> list[tuple[bytes, bytes]]:
        """Fetch raw (key, payload) rows for a range scan, sorted by key."""
        with self._op_span("op.scan", table=table, group=group):
            return self._scan_rows_inner(table, group, start_key, end_key, as_of)

    def _scan_rows_inner(
        self,
        table: str,
        group: str,
        start_key: bytes,
        end_key: bytes,
        as_of: int | None,
    ) -> list[tuple[bytes, bytes]]:
        if table not in self._locations:
            self._locate(table, start_key)
        results: list[tuple[bytes, bytes]] = []
        for server_name, tablet in self._locations[table]:
            if tablet.key_range.end is not None and tablet.key_range.end <= start_key:
                continue
            if end_key <= tablet.key_range.start:
                continue
            if self._read_replicas:
                rows = self._replica_scan_tablet(
                    table, group, tablet, server_name, start_key, end_key, as_of
                )
                for key, _, value in rows:
                    results.append((key, value))
                continue
            server = self._master.server(server_name)
            deadline = (
                Deadline.after(self._machine.clock, self._op_deadline)
                if self._op_deadline is not None
                else None
            )
            rows = self._call(
                server, _REQUEST_OVERHEAD, 4096,
                lambda s=server: list(
                    s.range_scan(table, group, start_key, end_key, as_of=as_of)
                ),
                table=table,
                deadline=deadline,
            )
            for key, _, value in rows:
                results.append((key, value))
        results.sort(key=lambda pair: pair[0])
        return results

    def _replica_scan_tablet(
        self,
        table: str,
        group: str,
        tablet: Tablet,
        owner_name: str,
        start_key: bytes,
        end_key: bytes,
        as_of: int | None,
    ) -> list[tuple[bytes, int, bytes]]:
        """Scan one tablet's slice of a range, preferring a follower.

        The range is clipped to the tablet before either side runs it —
        follower and owner both host multiple tablets of the table, so an
        unclipped range would return neighbouring tablets' rows once per
        hosting server."""
        sub_start = max(start_key, tablet.key_range.start)
        sub_end = (
            end_key
            if tablet.key_range.end is None
            else min(end_key, tablet.key_range.end)
        )
        seq = self._replica_seq
        self._replica_seq += 1
        follower_name: str | None = None
        if (seq % 100) < int(self._replica_read_fraction * 100):
            followers = self._follower_route(table, str(tablet.tablet_id))
            if followers:
                rotation = followers + [owner_name]
                picked = rotation[seq % len(rotation)]
                follower_name = None if picked == owner_name else picked
        if follower_name is not None:
            try:
                server = self._master.server(follower_name)
            except KeyError:
                self.invalidate_follower_routes(table)
                server = None
            if server is not None:
                deadline = (
                    Deadline.after(self._machine.clock, self._op_deadline)
                    if self._op_deadline is not None
                    else None
                )
                try:
                    return self._call(
                        server, _REQUEST_OVERHEAD, 4096,
                        lambda: server.follower_scan(
                            table, group, sub_start, sub_end,
                            as_of=as_of,
                            max_staleness=self._replica_max_staleness,
                        ),
                        table=table,
                        deadline=deadline,
                    )
                except (FollowerLaggingError, ServerOverloadedError):
                    pass
                except (ServerDownError, TabletNotFound, TabletMigratingError):
                    self.invalidate_follower_routes(table)
        owner = self._master.server(owner_name)
        deadline = (
            Deadline.after(self._machine.clock, self._op_deadline)
            if self._op_deadline is not None
            else None
        )
        return self._call(
            owner, _REQUEST_OVERHEAD, 4096,
            lambda: list(
                owner.range_scan(table, group, sub_start, sub_end, as_of=as_of)
            ),
            table=table,
            deadline=deadline,
        )

    # -- raw byte API (benchmarks; payloads are opaque 1 KB blobs) ---------------------------

    def put_raw(self, table: str, key: bytes, group: str, value: bytes) -> int:
        """Write one opaque group payload (no column encoding)."""
        with self._op_span("op.put", table=table, bytes=len(value)):
            return self._routed_call(
                table, key, len(value) + len(key) + _REQUEST_OVERHEAD, 16,
                lambda server: lambda: server.write(table, key, {group: value}),
            )

    def submit_put_raw(
        self,
        table: str,
        key: bytes,
        group: str,
        value: bytes,
        *,
        arrival: float | None = None,
    ):
        """Asynchronous put through the server's group-commit coordinator.

        Charges the request leg of the RPC to this client's clock, submits
        to the serving tablet server, and returns ``(future, request_seconds,
        ack_seconds)``: the write joins the server's open commit group and
        the :class:`~repro.wal.group_commit.CommitFuture` resolves when
        that group is durable.  Unlike :meth:`put_raw`, the client does
        not stall for the replication round trip — end-to-end latency is
        ``future.completion_time + ack_seconds - arrival``, which the
        concurrent drivers account on the client's own virtual timeline.

        ``arrival`` is the virtual time the op is issued (defaults to
        this client's clock); the submission reaches the server one
        request leg later.  Requires the server's ``group_commit`` gate.
        """
        server = self._server_for(table, key)
        local = server.machine is self._machine
        request_seconds = self._machine.network.transfer_cost(
            len(value) + len(key) + _REQUEST_OVERHEAD,
            local=local,
            a=self._machine.name,
            b=server.machine.name,
        )
        ack_seconds = self._machine.network.transfer_cost(
            16, local=local, a=server.machine.name, b=self._machine.name
        )
        self._machine.clock.advance(request_seconds)
        if arrival is None:
            arrival = self._machine.clock.now
        try:
            future = server.submit_write(
                table, key, {group: value}, arrival=arrival + request_seconds
            )
        except ServerDownError:
            self.invalidate_cache(table)
            raise
        return future, request_seconds, ack_seconds

    def get_raw(
        self, table: str, key: bytes, group: str, *, as_of: int | None = None
    ) -> bytes | None:
        """Read one opaque group payload."""
        with self._op_span("op.get", table=table, group=group):
            if self._read_replicas:
                result = self._replica_read(table, key, group, as_of=as_of)
            else:
                result = self._routed_call(
                    table, key, _REQUEST_OVERHEAD + len(key), 1024,
                    lambda server: lambda: server.read(table, key, group, as_of=as_of),
                )
        return None if result is None else result[1]

    def scan_raw(
        self,
        table: str,
        group: str,
        start_key: bytes,
        end_key: bytes,
        *,
        as_of: int | None = None,
    ) -> list[tuple[bytes, bytes]]:
        """Range scan returning opaque group payloads (no column decoding)."""
        return self._scan_rows(table, group, start_key, end_key, as_of)
