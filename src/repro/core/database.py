"""The LogBase facade: one object that is the whole database.

Wraps a :class:`~repro.core.cluster.LogBaseCluster` plus a transaction
manager and a default client, giving applications the paper's full API
surface — DDL, single-record operations with single-row ACID, scans,
multiversion reads, and multi-record transactions under snapshot
isolation — from a single import::

    from repro import LogBase, TableSchema, ColumnGroup

    db = LogBase(n_nodes=3)
    db.create_table(TableSchema("events", "id",
                    (ColumnGroup("payload", ("body",)),)))
    db.put("events", b"k1", {"payload": {"body": b"hello"}})
    txn = db.begin()
    ...
    txn.commit()
"""

from __future__ import annotations

from repro.config import LogBaseConfig
from repro.core.client import Client
from repro.core.cluster import LogBaseCluster
from repro.core.schema import TableSchema
from repro.core.tablet import Tablet
from repro.sim.machine import Machine
from repro.txn.mvocc import TransactionManager
from repro.txn.transaction import Transaction
from repro.wal.compaction import CompactionResult


class LogBase:
    """A LogBase deployment with a default client and transaction manager."""

    def __init__(
        self,
        n_nodes: int = 3,
        config: LogBaseConfig | None = None,
        n_masters: int = 1,
    ) -> None:
        self.cluster = LogBaseCluster(n_nodes, config, n_masters)
        self.txn_manager = TransactionManager(
            self.cluster.master,
            self.cluster.tso,
            self.cluster.coordination,
            tracing=self.cluster.config.tracing,
        )
        self._default_client = self.client()

    # -- DDL -----------------------------------------------------------------------

    def create_table(
        self,
        schema: TableSchema,
        *,
        tablets_per_server: int = 1,
        key_domain: int = 2_000_000_000,
        key_width: int = 12,
        only_servers: list[str] | None = None,
    ) -> list[Tablet]:
        """Create a range-partitioned table across the cluster."""
        return self.cluster.master.create_table(
            schema,
            tablets_per_server=tablets_per_server,
            key_domain=key_domain,
            key_width=key_width,
            only_servers=only_servers,
        )

    # -- clients & transactions -------------------------------------------------------

    def client(self, machine: Machine | None = None) -> Client:
        """A client bound to ``machine`` (default: the first node)."""
        config = self.cluster.config
        return Client(
            self.cluster.master,
            machine if machine is not None else self.cluster.machines[0],
            retry_limit=config.client_retry_limit,
            retry_backoff=config.client_retry_backoff,
            retry_backoff_max=config.client_retry_backoff_max,
            op_deadline=config.op_deadline if config.gray_resilience else None,
            gray_policy=config.gray_policy(),
            tracing=config.tracing,
            read_replicas=config.read_replicas,
            replica_read_fraction=config.replica_read_fraction,
            replica_max_staleness=config.replica_max_staleness,
        )

    def begin(self) -> Transaction:
        """Start a snapshot-isolated transaction."""
        return self.txn_manager.begin()

    # -- single-record convenience API (single-row ACID, §3.7) -------------------------

    def put(self, table: str, key: bytes, row: dict[str, dict[str, bytes]]) -> int:
        """Write one record's column groups; returns the version timestamp."""
        return self._default_client.put(table, key, row)

    def get(
        self, table: str, key: bytes, group: str, *, as_of: int | None = None
    ) -> dict[str, bytes] | None:
        """Read one column group (optionally a historical version)."""
        return self._default_client.get(table, key, group, as_of=as_of)

    def get_row(self, table: str, key: bytes) -> dict[str, dict[str, bytes]] | None:
        """Reconstruct the whole tuple across column groups."""
        return self._default_client.get_row(table, key)

    def delete(self, table: str, key: bytes, group: str | None = None) -> None:
        """Delete a record (one group or all groups)."""
        self._default_client.delete(table, key, group)

    def scan(
        self,
        table: str,
        group: str,
        start_key: bytes,
        end_key: bytes,
        *,
        as_of: int | None = None,
    ) -> list[tuple[bytes, dict[str, bytes]]]:
        """Range scan across all tablets."""
        return self._default_client.scan(table, group, start_key, end_key, as_of=as_of)

    # -- maintenance -------------------------------------------------------------------

    def compact_all(self) -> list[CompactionResult]:
        """Run log compaction on every *serving* tablet server (crashed or
        decommissioned servers are skipped)."""
        return [
            server.compact() for server in self.cluster.servers if server.serving
        ]

    def checkpoint_all(self) -> None:
        """Checkpoint every serving tablet server's indexes."""
        for server in self.cluster.servers:
            if server.serving:
                self.cluster.checkpoints[server.name].write_checkpoint()
