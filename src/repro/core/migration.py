"""Live tablet migration (§5): lease-fenced ownership handoff.

Because "the log is the database" — every tablet's data already lives in
the shared, replicated DFS — migrating a tablet means rebuilding an
in-memory index on the target, not copying data.  The state machine here
makes that observation operational *and* crash-safe:

1. **prepare** — the master persists a migration record in the
   coordination service (so a promoted standby can finish or abort the
   handoff), bumps a fence epoch, and assigns the tablet to the target in
   *importing* mode (the target owns indexes for it but rejects client
   ops until the flip).
2. **catch-up** — the target replays the tablet's records out of the
   source's log, read directly from the shared DFS segments
   (:func:`~repro.core.recovery.split_log_by_tablet` with the migration's
   own fence epoch).  The source keeps serving throughout; the source-log
   position the catch-up covered is persisted.
3. **fenced flip** — the source is fenced (told to bounce ops with the
   retryable ``TabletMigratingError``; if it is partitioned or paused and
   cannot be told, the master instead waits out its ownership lease so it
   self-fences), the short delta since the catch-up position is replayed,
   and ownership flips in the catalog — the commit point.  Client
   unavailability is bounded by this window, measured into the
   ``latency.migration.flip`` histogram.
4. **serve** — the target's lease is granted, the source drops the
   tablet, the migration record is cleared.

Every step is idempotent: the split/adopt machinery dedupes on
(key, timestamp), the fence epoch rejects a crashed attempt's stale
files, and :meth:`LiveMigrator.resume` lets a new master either finish a
migration that reached the flip or abort one that did not — the
single-owner invariant holds across any crash interleaving.

The module also hosts hot-tablet **splitting** (split a tablet at the
median key of its observed-access sample; pure index re-bucketing, the
log is untouched) and the master-side **load balancer** that migrates or
splits when per-server heat skew crosses the configured threshold.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.core.partition import KeyRange
from repro.core.recovery import adopt_split_log, split_log_by_tablet
from repro.core.tablet import Tablet, TabletId
from repro.errors import MigrationError, NoNodeError, TabletNotFound
from repro.obs.hist import Histogram
from repro.obs.trace import span
from repro.sim.failure import (
    CP_MIGRATION_CATCHUP,
    CP_MIGRATION_FLIP,
    CP_MIGRATION_PREPARE,
    CP_SPLIT_FLIP,
    crash_point,
)
from repro.sim.metrics import (
    HIST_MIGRATION_FLIP,
    MIGRATION_ABORTED,
    MIGRATION_BALANCER_MOVES,
    MIGRATION_COMPLETED,
    MIGRATION_FLIP_SECONDS,
    MIGRATION_RECORDS_CAUGHT_UP,
    MIGRATION_SPLITS,
    MIGRATION_STARTED,
    SPAN_MIGRATION_CATCHUP_PHASE,
    SPAN_MIGRATION_FLIP_PHASE,
    SPAN_MIGRATION_MIGRATE,
)
from repro.wal.record import LogPointer

MIGRATIONS_PATH = "/logbase/migrations"
SPLITS_PATH = "/logbase/tablet-splits"

# Tiny clock nudge past a waited-out lease so "now <= lease_until" is
# strictly false on the fenced owner.
_LEASE_EPSILON = 1e-6


@dataclass
class MigrationReport:
    """Outcome of one live migration."""

    tablet_id: str
    source: str
    target: str
    records_caught_up: int = 0  # async catch-up replays
    delta_records: int = 0  # records replayed inside the flip window
    flip_seconds: float = 0.0  # the only client-visible unavailability
    waited_lease: bool = False  # source unreachable: fenced by lease expiry
    completed: bool = False

    def to_dict(self) -> dict:
        return {
            "tablet_id": self.tablet_id,
            "source": self.source,
            "target": self.target,
            "records_caught_up": self.records_caught_up,
            "delta_records": self.delta_records,
            "flip_seconds": self.flip_seconds,
            "waited_lease": self.waited_lease,
            "completed": self.completed,
        }


@dataclass
class SplitReport:
    """Outcome of one hot-tablet split."""

    tablet_id: str
    server: str
    split_key: bytes
    left: str = ""
    right: str = ""
    entries_moved: int = 0

    def to_dict(self) -> dict:
        return {
            "tablet_id": self.tablet_id,
            "server": self.server,
            "split_key": self.split_key.decode("latin-1"),
            "left": self.left,
            "right": self.right,
            "entries_moved": self.entries_moved,
        }


class LiveMigrator:
    """Drives live migrations and splits on behalf of one master.

    The migrator persists every state transition through its master's
    coordination session, so a deposed master's attempt to advance a
    migration after failover dies with ``SessionExpiredError`` — the
    coordination service is the fence between masters, the lease is the
    fence between tablet servers.
    """

    def __init__(self, master, config) -> None:
        self.master = master
        self.config = config
        self.flip_histogram = Histogram(HIST_MIGRATION_FLIP)

    # -- znode persistence -------------------------------------------------------

    def _record_path(self, tablet_id: str) -> str:
        return f"{MIGRATIONS_PATH}/{tablet_id}"

    def _persist(self, rec: dict) -> None:
        coordination = self.master.coordination
        session = self.master.session
        coordination.ensure_path(session, MIGRATIONS_PATH)
        path = self._record_path(rec["tablet"])
        data = json.dumps(rec, sort_keys=True).encode()
        if coordination.exists(path):
            coordination.set(session, path, data)
        else:
            coordination.create(session, path, data=data)

    def _clear(self, rec: dict) -> None:
        path = self._record_path(rec["tablet"])
        try:
            self.master.coordination.delete(self.master.session, path)
        except NoNodeError:
            pass

    def pending_migrations(self) -> list[dict]:
        """Parsed migration records currently persisted in znodes."""
        coordination = self.master.coordination
        if not coordination.exists(MIGRATIONS_PATH):
            return []
        records = []
        for child in sorted(coordination.get_children(MIGRATIONS_PATH)):
            data, _ = coordination.get(f"{MIGRATIONS_PATH}/{child}")
            records.append(json.loads(data))
        return records

    # -- helpers -----------------------------------------------------------------

    def _locator(self):
        catalog = self.master.catalog

        def locate(table: str, key: bytes) -> str:
            for tablet in catalog.tablets.get(table, []):
                if tablet.covers(key):
                    return str(tablet.tablet_id)
            return ""

        return locate

    def _out_name(self, tablet_id: str) -> str:
        # Migration-scoped split directory: never collides with a real
        # failover split of the (still alive) source server.
        return f"mig-{tablet_id}"

    def _server(self, name: str):
        return self.master.catalog.servers.get(name)

    def _majority_reachable(self, server) -> bool:
        """Whether a majority of the other registered servers' machines
        can reach ``server`` — the master's (conservative) stand-in for
        "can I tell this server to fence itself"."""
        if not server.machine.alive:
            return False
        partitions = server.machine.network.partitions
        others = [
            peer.machine
            for peer in self.master.catalog.servers.values()
            if peer.machine is not server.machine
        ]
        if not others:
            return True
        ok = sum(
            1
            for machine in others
            if partitions.reachable(machine.name, server.machine.name)
        )
        return 2 * ok >= len(others)

    # -- the state machine -------------------------------------------------------

    def migrate(self, tablet_id: str, target_name: str) -> MigrationReport:
        """Run one live migration end to end.  Raises on interruption
        (crash points fire mid-flight in chaos runs); the persisted record
        lets :meth:`resume` finish or abort what this attempt started."""
        steps, ctx = self.phases(tablet_id, target_name)
        for _name, step in steps:
            step()
        return ctx["report"]

    def phases(self, tablet_id: str, target_name: str):
        """The migration as named virtual-time steps.

        Returns ``([(name, callable), ...], ctx)``; running the callables
        in order is :meth:`migrate`.  Benchmarks drive them through the
        concurrent scheduler so client ops interleave between phases —
        writes landing between catch-up and flip become the flip delta,
        exactly as they would in a real deployment.
        """
        ctx: dict = {}

        def prepare() -> None:
            ctx["rec"] = self._prepare(tablet_id, target_name)

        def catch_up() -> None:
            self._catch_up(ctx["rec"])

        def flip() -> None:
            ctx["report"] = self._flip(ctx["rec"])

        return [("prepare", prepare), ("catchup", catch_up), ("flip", flip)], ctx

    def _prepare(self, tablet_id: str, target_name: str) -> dict:
        catalog = self.master.catalog
        source_name = catalog.assignments.get(tablet_id)
        if source_name is None:
            raise TabletNotFound(tablet_id)
        if source_name == target_name:
            raise MigrationError(f"{tablet_id} already lives on {target_name}")
        target = self._server(target_name)
        if target is None or not target.machine.alive or not target.serving:
            raise MigrationError(f"migration target {target_name} is not serving")
        out_name = self._out_name(tablet_id)
        epoch = catalog.fence_epochs.get(out_name, 0) + 1
        catalog.fence_epochs[out_name] = epoch
        rec = {
            "tablet": tablet_id,
            "source": source_name,
            "target": target_name,
            "epoch": epoch,
            "state": "prepare",
            "catchup": None,
            "records": 0,
        }
        target.machine.counters.add(MIGRATION_STARTED)
        self._persist(rec)
        crash_point(
            CP_MIGRATION_PREPARE,
            tablet=tablet_id,
            source=source_name,
            target=target_name,
        )
        # Importing mode: the target owns the tablet's indexes but bounces
        # client ops until the flip (the catalog still routes to the
        # source, so only a stale direct call could land here anyway).
        tablet = self.master._tablet_by_id(tablet_id)
        target.assign_tablet(tablet)
        target.begin_tablet_migration(tablet_id)
        target.revoke_lease(tablet_id)
        return rec

    def _catch_up(self, rec: dict) -> None:
        tablet_id, source_name = rec["tablet"], rec["source"]
        target = self._server(rec["target"])
        source = self._server(source_name)
        rec["state"] = "catchup"
        self._persist(rec)
        with span(SPAN_MIGRATION_CATCHUP_PHASE, target.machine, tablet=tablet_id):
            # The source keeps serving; its log keeps growing.  Record the
            # position this pass covers *first* — anything later is the
            # flip delta's job (re-reading an overlap is safe, adoption
            # dedupes on (key, timestamp)).
            cutoff = (
                source.log.end_pointer() if source is not None else None
            )
            crash_point(
                CP_MIGRATION_CATCHUP,
                tablet=tablet_id,
                source=source_name,
                target=rec["target"],
                stage="split",
            )
            out_name = self._out_name(tablet_id)
            splits = split_log_by_tablet(
                self.master.dfs,
                source_name,
                target.machine,
                locate=self._locator(),
                fence=rec["epoch"],
                only_tablet=tablet_id,
                out_name=out_name,
            )
            crash_point(
                CP_MIGRATION_CATCHUP,
                tablet=tablet_id,
                source=source_name,
                target=rec["target"],
                stage="adopt",
            )
            caught = 0
            if tablet_id in splits.paths:
                replay = adopt_split_log(
                    target, self.master.dfs, out_name, tablet_id, fence=rec["epoch"]
                )
                caught = replay.writes_applied + replay.deletes_applied
            if cutoff is None:
                cutoff = splits.end
            rec["catchup"] = [cutoff.file_no, cutoff.offset] if cutoff else None
            rec["records"] = caught
            rec["state"] = "catchup_done"
            self._persist(rec)
            target.machine.counters.add(MIGRATION_RECORDS_CAUGHT_UP, caught)

    def _flip(self, rec: dict) -> MigrationReport:
        tablet_id, source_name, target_name = (
            rec["tablet"],
            rec["source"],
            rec["target"],
        )
        catalog = self.master.catalog
        target = self._server(target_name)
        source = self._server(source_name)
        report = MigrationReport(
            tablet_id=tablet_id,
            source=source_name,
            target=target_name,
            records_caught_up=rec.get("records", 0),
        )
        rec["state"] = "flip"
        self._persist(rec)
        crash_point(
            CP_MIGRATION_FLIP,
            tablet=tablet_id,
            source=source_name,
            target=target_name,
            stage="begin",
        )
        with span(SPAN_MIGRATION_FLIP_PHASE, target.machine, tablet=tablet_id):
            flip_start = target.machine.clock.now
            if source is not None and self._majority_reachable(source):
                # Reachable source: fence it directly — ops bounce with the
                # retryable TabletMigratingError from here to the flip.
                source.begin_tablet_migration(tablet_id)
                source.revoke_lease(tablet_id)
            else:
                # Partitioned or paused owner: it cannot be told, so wait
                # out its ownership lease — it self-fences the moment its
                # own clock passes the expiry.  The wait is charged to the
                # flip window (this is exactly why the lease TTL bounds
                # migration unavailability), and wall time passes on the
                # paused machine too.
                report.waited_lease = True
                wait = self.config.migration_lease_seconds + _LEASE_EPSILON
                target.machine.clock.advance(wait)
                if source is not None:
                    source.machine.clock.advance(wait)
            # Delta catch-up: everything the source appended since the
            # async pass, replayed inside the fence.
            start = None
            if rec.get("catchup"):
                start = LogPointer(rec["catchup"][0], rec["catchup"][1], 0)
            delta_name = self._out_name(tablet_id) + "-delta"
            splits = split_log_by_tablet(
                self.master.dfs,
                source_name,
                target.machine,
                start=start,
                locate=self._locator(),
                fence=rec["epoch"],
                only_tablet=tablet_id,
                out_name=delta_name,
            )
            if tablet_id in splits.paths:
                replay = adopt_split_log(
                    target, self.master.dfs, delta_name, tablet_id, fence=rec["epoch"]
                )
                report.delta_records = replay.writes_applied + replay.deletes_applied
                target.machine.counters.add(
                    MIGRATION_RECORDS_CAUGHT_UP, report.delta_records
                )
            crash_point(
                CP_MIGRATION_FLIP,
                tablet=tablet_id,
                source=source_name,
                target=target_name,
                stage="commit",
            )
            # The commit point: catalog ownership flips to the target.
            catalog.assignments[tablet_id] = target_name
            self._finalize(rec, report, flip_start)
        return report

    def _finalize(self, rec: dict, report: MigrationReport, flip_start: float) -> None:
        """Post-commit cleanup: open the target, drop the source, clear
        the record, account the flip window."""
        tablet_id = rec["tablet"]
        target = self._server(rec["target"])
        source = self._server(rec["source"])
        target.finish_tablet_migration(tablet_id)
        target.grant_lease(tablet_id)
        if self.config.read_replicas:
            # Ownership changed under a bumped fence epoch: tear the
            # tablet's read replicas down right now so none keeps applying
            # the deposed owner's log.  The next heartbeat re-places them
            # against the new owner.
            catalog = self.master.catalog
            for follower_name in catalog.followers.pop(tablet_id, []):
                follower_server = catalog.servers.get(follower_name)
                if follower_server is not None:
                    follower_server.unfollow_tablet(tablet_id)
        if (
            source is not None
            and source.machine.alive
            and source.serving
            and self._majority_reachable(source)
        ):
            tablet = target.tablets.get(tablet_id)
            if tablet is not None:
                source.unassign_tablet(tablet.tablet_id)
        # else: the unreachable stale owner cannot be told — its lapsed
        # lease (or its death) keeps it from serving, and heartbeat
        # reconciliation reclaims the copy when it rejoins.
        rec["state"] = "done"
        self._clear(rec)
        report.flip_seconds = target.machine.clock.now - flip_start
        report.completed = True
        self.flip_histogram.record(report.flip_seconds)
        target.machine.counters.add(MIGRATION_FLIP_SECONDS, report.flip_seconds)
        target.machine.counters.add(MIGRATION_COMPLETED)

    # -- crash recovery ----------------------------------------------------------

    def resume(self) -> list[dict]:
        """Converge every persisted migration and split intent.

        Called by a newly-promoted master (or a retrying operator): a
        migration that reached its flip — or already committed in the
        catalog — is completed; anything earlier is safely aborted back
        to the source.  Returns ``[{"tablet", "outcome"}, ...]``.
        """
        outcomes = []
        for rec in self.pending_migrations():
            outcomes.append(
                {"tablet": rec["tablet"], "outcome": self._resume_one(rec)}
            )
        for rec in self._pending_splits():
            outcomes.append(
                {"tablet": rec["tablet"], "outcome": self._resume_split(rec)}
            )
        return outcomes

    def _resume_one(self, rec: dict) -> str:
        tablet_id = rec["tablet"]
        catalog = self.master.catalog
        target = self._server(rec["target"])
        target_live = (
            target is not None
            and target.machine.alive
            and target.serving
            and tablet_id in target.tablets
        )
        if catalog.assignments.get(tablet_id) == rec["target"]:
            # The flip committed; only the cleanup was interrupted.
            if target_live:
                report = MigrationReport(
                    tablet_id=tablet_id, source=rec["source"], target=rec["target"]
                )
                self._finalize(rec, report, target.machine.clock.now)
                return "completed"
            # Target died *after* taking ownership: its adopted records
            # are durable in its own log — the normal permanent-failure
            # path re-homes them.  Drop the stale record.
            self._clear(rec)
            return "completed"
        if rec["state"] == "flip" and target_live:
            # The fence was (or can be re-)established and the target
            # holds the caught-up data: finish the flip under the same
            # epoch — split/adopt re-runs are deduped.
            report = self._flip(rec)
            return "completed" if report.completed else "aborted"
        self._abort(rec)
        return "aborted"

    def _abort(self, rec: dict) -> None:
        """Converge back to "the source owns the tablet": undo the
        target's import and re-open the source."""
        tablet_id = rec["tablet"]
        catalog = self.master.catalog
        target = self._server(rec["target"])
        source = self._server(rec["source"])
        if target is not None and catalog.assignments.get(tablet_id) != rec["target"]:
            tablet = target.tablets.get(tablet_id)
            target.finish_tablet_migration(tablet_id)
            if tablet is not None:
                # Records a crashed catch-up already appended to the
                # target's log stay there harmlessly: compaction's
                # owned-records filter drops them, and a restart redo
                # routes them to TabletNotFound.
                target.unassign_tablet(tablet.tablet_id)
        if source is not None:
            source.finish_tablet_migration(tablet_id)
            if (
                catalog.assignments.get(tablet_id) == rec["source"]
                and source.machine.alive
                and source.serving
            ):
                source.grant_lease(tablet_id)
        machine = (target or source).machine if (target or source) else None
        if machine is not None:
            machine.counters.add(MIGRATION_ABORTED)
        self._clear(rec)

    # -- hot-tablet splitting ----------------------------------------------------

    def _split_record_path(self, tablet_id: str) -> str:
        return f"{SPLITS_PATH}/{tablet_id}"

    def _pending_splits(self) -> list[dict]:
        coordination = self.master.coordination
        if not coordination.exists(SPLITS_PATH):
            return []
        records = []
        for child in sorted(coordination.get_children(SPLITS_PATH)):
            data, _ = coordination.get(f"{SPLITS_PATH}/{child}")
            records.append(json.loads(data))
        return records

    def split(self, tablet_id: str, split_key: bytes | None = None) -> SplitReport:
        """Split one tablet at ``split_key`` (default: the median of the
        owner's observed-key sample).  The split is local to the owning
        server — the log is untouched, index entries are re-bucketed —
        with a znode intent + ``CP_SPLIT_FLIP`` guarding the brief commit
        window.
        """
        catalog = self.master.catalog
        owner_name = catalog.assignments.get(tablet_id)
        if owner_name is None:
            raise TabletNotFound(tablet_id)
        owner = self._server(owner_name)
        if owner is None or not owner.machine.alive or not owner.serving:
            raise MigrationError(f"split owner {owner_name} is not serving")
        old = self.master._tablet_by_id(tablet_id)
        if split_key is None:
            split_key = owner.split_key(tablet_id)
        if split_key is None:
            raise MigrationError(
                f"no observed-key sample to split {tablet_id} on"
            )
        key_range = old.key_range
        if not key_range.contains(split_key) or split_key <= key_range.start:
            raise MigrationError(
                f"split key {split_key!r} not strictly inside {key_range}"
            )
        table = old.table
        next_ordinal = (
            max(t.tablet_id.ordinal for t in catalog.tablets[table]) + 1
        )
        left = Tablet(
            TabletId(table, next_ordinal),
            KeyRange(key_range.start, split_key),
            old.schema,
        )
        right = Tablet(
            TabletId(table, next_ordinal + 1),
            KeyRange(split_key, key_range.end),
            old.schema,
        )
        rec = {
            "tablet": tablet_id,
            "server": owner_name,
            "key": split_key.decode("latin-1"),
            "left": str(left.tablet_id),
            "right": str(right.tablet_id),
        }
        coordination = self.master.coordination
        coordination.ensure_path(self.master.session, SPLITS_PATH)
        path = self._split_record_path(tablet_id)
        data = json.dumps(rec, sort_keys=True).encode()
        if coordination.exists(path):
            coordination.set(self.master.session, path, data)
        else:
            coordination.create(self.master.session, path, data=data)
        # The brief fenced window: ops on the old tablet bounce while the
        # index entries re-bucket, then the catalog commits the new pair.
        owner.begin_tablet_migration(tablet_id)
        crash_point(CP_SPLIT_FLIP, tablet=tablet_id, server=owner_name)
        moved = owner.split_tablet(old, left, right)
        tablets = catalog.tablets[table]
        tablets.remove(old)
        tablets.extend([left, right])
        tablets.sort(key=lambda t: t.key_range.start)
        del catalog.assignments[tablet_id]
        catalog.assignments[str(left.tablet_id)] = owner_name
        catalog.assignments[str(right.tablet_id)] = owner_name
        try:
            coordination.delete(self.master.session, path)
        except NoNodeError:
            pass
        owner.machine.counters.add(MIGRATION_SPLITS)
        return SplitReport(
            tablet_id=tablet_id,
            server=owner_name,
            split_key=split_key,
            left=str(left.tablet_id),
            right=str(right.tablet_id),
            entries_moved=moved,
        )

    def _resume_split(self, rec: dict) -> str:
        """Converge one interrupted split: either the catalog committed
        (just clean up) or it did not (abort the intent — the old tablet
        boundaries still hold everywhere that matters)."""
        coordination = self.master.coordination
        path = self._split_record_path(rec["tablet"])
        catalog = self.master.catalog
        committed = (
            rec["tablet"] not in catalog.assignments
            and rec["left"] in catalog.assignments
        )
        owner = self._server(rec["server"])
        if not committed and owner is not None:
            owner.finish_tablet_migration(rec["tablet"])
            if (
                self.config.live_migration
                and catalog.assignments.get(rec["tablet"]) == rec["server"]
                and owner.machine.alive
                and owner.serving
            ):
                owner.grant_lease(rec["tablet"])
        try:
            coordination.delete(self.master.session, path)
        except NoNodeError:
            pass
        return "completed" if committed else "aborted"

    # -- load balancing ----------------------------------------------------------

    def balance_tick(self, tablet_heat: dict[str, float]) -> list[dict]:
        """One balancer pass over the master-side heat snapshot.

        When the hottest live server carries more than
        ``balancer_skew_threshold`` times the coldest's heat, act once: a
        tablet dominating its server's heat (``balancer_split_fraction``)
        and with a usable split key is split in place; otherwise the
        hottest tablet migrates to the coldest server.  One action per
        tick keeps the balancer convergent (the next heartbeat sees the
        post-action heat).
        """
        catalog = self.master.catalog
        totals: dict[str, float] = {}
        for name, server in catalog.servers.items():
            if server.machine.alive and server.serving:
                totals[name] = 0.0
        if len(totals) < 2:
            return []
        owned: dict[str, list[str]] = {name: [] for name in totals}
        for tablet_id, owner in catalog.assignments.items():
            if owner in totals:
                totals[owner] += tablet_heat.get(tablet_id, 0.0)
                owned[owner].append(tablet_id)
        hottest = max(totals, key=lambda n: totals[n])
        coldest = min(totals, key=lambda n: totals[n])
        if totals[hottest] <= self.config.balancer_skew_threshold * max(
            totals[coldest], 1.0
        ):
            return []
        candidates = owned[hottest]
        if not candidates:
            return []
        hot_tablet = max(candidates, key=lambda t: tablet_heat.get(t, 0.0))
        hot_share = (
            tablet_heat.get(hot_tablet, 0.0) / totals[hottest]
            if totals[hottest]
            else 0.0
        )
        owner = self._server(hottest)
        if (
            hot_share >= self.config.balancer_split_fraction
            and owner is not None
            and owner.split_key(hot_tablet) is not None
        ):
            report = self.split(hot_tablet)
            owner.machine.counters.add(MIGRATION_BALANCER_MOVES)
            return [{"action": "split", **report.to_dict()}]
        report = self.migrate(hot_tablet, coldest)
        self._server(coldest).machine.counters.add(MIGRATION_BALANCER_MOVES)
        return [{"action": "migrate", **report.to_dict()}]
