"""The master node (§3.3): catalog, tablet assignment, failover.

The master monitors tablet-server liveness through the coordination
service (servers hold ephemeral znodes), owns the table catalog, assigns
tablets to servers, and orchestrates recovery when a server fails
permanently: the failed server's log is split by tablet and healthy
servers adopt the tablets.  Multiple master instances may run; the active
one is elected via the coordination service and the master never sits on
the data path (clients cache locations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.coordination.election import LeaderElection
from repro.coordination.znodes import CoordinationService, Session
from repro.core.partition import split_key_domain
from repro.core.recovery import (
    RecoveryReport,
    adopt_split_log,
    split_log_by_tablet,
)
from repro.core.schema import TableSchema
from repro.core.tablet import Tablet, TabletId
from repro.core.tablet_server import TabletServer
from repro.dfs.filesystem import DFS
from repro.errors import (
    ServerDownError,
    TableAlreadyExists,
    TableNotFound,
    TabletNotFound,
)

DEFAULT_KEY_DOMAIN = 2_000_000_000  # max key in the YCSB benchmark (§4.1)


@dataclass
class SharedCatalog:
    """Cluster metadata shared by every master instance.

    In the real deployment this state lives in the coordination service so
    a promoted standby sees it; here the master instances of one cluster
    share a catalog object, which models the same thing.
    """

    tables: dict[str, TableSchema] = field(default_factory=dict)
    tablets: dict[str, list[Tablet]] = field(default_factory=dict)
    assignments: dict[str, str] = field(default_factory=dict)  # tablet -> server
    servers: dict[str, TabletServer] = field(default_factory=dict)
    server_sessions: dict[str, Session] = field(default_factory=dict)
    # Split-fence epoch per (dead or moving) server: bumped before each
    # log split so adopters can reject a crashed splitter's stale files.
    fence_epochs: dict[str, int] = field(default_factory=dict)
    # Read-replica placement: tablet id -> follower server names (empty
    # unless config.read_replicas; maintained by the cluster heartbeat).
    followers: dict[str, list[str]] = field(default_factory=dict)


@dataclass
class FailoverReport:
    """Result of handling one permanent server failure."""

    failed_server: str
    reassigned: dict[str, str] = field(default_factory=dict)  # tablet -> new server
    recovery: dict[str, RecoveryReport] = field(default_factory=dict)


class Master:
    """The (active) master process."""

    def __init__(
        self,
        name: str,
        dfs: DFS,
        coordination: CoordinationService,
        catalog: SharedCatalog | None = None,
    ) -> None:
        self.name = name
        self.dfs = dfs
        self.coordination = coordination
        self.session: Session = coordination.connect(name)
        coordination.ensure_path(self.session, "/logbase/servers")
        self.election = LeaderElection(coordination, "/logbase/master-election")
        self.election.volunteer(self.session, name)
        self.catalog = catalog if catalog is not None else SharedCatalog()

    @property
    def _tables(self) -> dict[str, TableSchema]:
        return self.catalog.tables

    @property
    def _tablets(self) -> dict[str, list[Tablet]]:
        return self.catalog.tablets

    @property
    def _assignments(self) -> dict[str, str]:
        return self.catalog.assignments

    @property
    def _servers(self) -> dict[str, TabletServer]:
        return self.catalog.servers

    @property
    def _server_sessions(self) -> dict[str, Session]:
        return self.catalog.server_sessions

    # -- leadership -----------------------------------------------------------------

    @property
    def is_active(self) -> bool:
        """Whether this master currently leads."""
        return self.election.is_leader(self.name)

    # -- server membership ---------------------------------------------------------------

    def register_server(self, server: TabletServer) -> None:
        """A tablet server joins: it takes an ephemeral liveness znode."""
        session = self.coordination.connect(server.name)
        self.coordination.create(
            session, f"/logbase/servers/{server.name}", ephemeral=True
        )
        self._servers[server.name] = server
        self._server_sessions[server.name] = session
        if getattr(self, "_auto_failover", False):
            self._watch_server(server.name)

    def live_servers(self) -> list[str]:
        """Names of servers whose liveness znode exists, sorted."""
        return [
            name
            for name in self.coordination.get_children("/logbase/servers")
            if self._servers.get(name) is not None
        ]

    def server(self, name: str) -> TabletServer:
        """Server handle by name."""
        return self._servers[name]

    # -- catalog / DDL ---------------------------------------------------------------------

    def create_table(
        self,
        schema: TableSchema,
        *,
        tablets_per_server: int = 1,
        key_domain: int = DEFAULT_KEY_DOMAIN,
        key_width: int = 12,
        only_servers: list[str] | None = None,
    ) -> list[Tablet]:
        """Create a table: range-partition it and assign tablets round-robin.

        Args:
            only_servers: restrict hosting to these servers (the paper's
                micro-benchmarks run one tablet server over a 3-node DFS).

        Raises:
            TableAlreadyExists: if the name is taken.
        """
        if schema.name in self._tables:
            raise TableAlreadyExists(schema.name)
        servers = self.live_servers()
        if only_servers is not None:
            servers = [name for name in servers if name in only_servers]
        if not servers:
            raise ServerDownError("no live tablet servers to host the table")
        n_tablets = max(1, len(servers) * tablets_per_server)
        ranges = split_key_domain(key_domain, n_tablets, key_width)
        tablets = [
            Tablet(TabletId(schema.name, i), key_range, schema)
            for i, key_range in enumerate(ranges)
        ]
        self._tables[schema.name] = schema
        self._tablets[schema.name] = tablets
        for i, tablet in enumerate(tablets):
            target = servers[i % len(servers)]
            self._assign(tablet, target)
        return tablets

    def _assign(self, tablet: Tablet, server_name: str) -> None:
        self._assignments[str(tablet.tablet_id)] = server_name
        self._servers[server_name].assign_tablet(tablet)

    def schema(self, table: str) -> TableSchema:
        """Schema of ``table``.

        Raises:
            TableNotFound: if unknown.
        """
        schema = self._tables.get(table)
        if schema is None:
            raise TableNotFound(table)
        return schema

    def tablets(self, table: str) -> list[Tablet]:
        """All tablets of ``table``."""
        if table not in self._tablets:
            raise TableNotFound(table)
        return list(self._tablets[table])

    # -- routing ------------------------------------------------------------------------------

    def locate(self, table: str, key: bytes) -> tuple[str, Tablet]:
        """Find (server name, tablet) serving ``key``.

        Raises:
            TabletNotFound: if no tablet covers the key.
        """
        for tablet in self.tablets(table):
            if tablet.covers(key):
                return self._assignments[str(tablet.tablet_id)], tablet
        raise TabletNotFound(f"{table}:{key!r}")

    def locations(self, table: str) -> list[tuple[str, Tablet]]:
        """(server, tablet) for every tablet of ``table`` (scan planning)."""
        return [
            (self._assignments[str(t.tablet_id)], t) for t in self.tablets(table)
        ]

    def follower_locations(self, table: str) -> dict[str, list[str]]:
        """tablet id -> follower server names for every tablet of ``table``
        (read-replica routing; empty lists when no followers are placed)."""
        return {
            str(t.tablet_id): list(self.catalog.followers.get(str(t.tablet_id), ()))
            for t in self.tablets(table)
        }

    # -- failover --------------------------------------------------------------------------------

    def expire_server(self, name: str) -> None:
        """Expire a server's liveness session (crash detection)."""
        session = self._server_sessions.get(name)
        if session is not None:
            session.expire()

    def handle_permanent_failure(self, failed: str) -> FailoverReport:
        """Reassign a dead server's tablets to healthy servers (§3.8).

        The failed server's log (in the shared DFS) is split by tablet;
        each adopting server redoes its new tablet's split file.

        The procedure is *restartable*: ownership of each tablet flips
        only after its adoption replay finished, so if the splitter or an
        adopter crashes mid-failover the tablet is still orphaned and a
        retried call re-splits (under a fresh fence epoch) and re-adopts
        it — the adopter's (key, timestamp) dedupe keeps the replay from
        double-appending whatever the crashed attempt already re-homed.
        """
        self.expire_server(failed)
        failed_server = self._servers.pop(failed, None)
        orphaned = [
            tablet_id
            for tablet_id, owner in self._assignments.items()
            if owner == failed
        ]
        if failed_server is None and not orphaned:
            raise ServerDownError(f"unknown server {failed}")
        healthy = self.live_servers()
        if not healthy:
            raise ServerDownError("no healthy servers left to adopt tablets")
        report = FailoverReport(failed_server=failed)
        if not orphaned:
            return report
        epoch = self.catalog.fence_epochs.get(failed, 0) + 1
        self.catalog.fence_epochs[failed] = epoch
        splitter = self._servers[healthy[0]].machine

        def locate_tablet(table: str, key: bytes) -> str:
            for tablet in self._tablets.get(table, []):
                if tablet.covers(key):
                    return str(tablet.tablet_id)
            return ""

        splits = split_log_by_tablet(
            self.dfs, failed, splitter, locate=locate_tablet, fence=epoch
        )
        for i, tablet_id in enumerate(sorted(orphaned)):
            target = healthy[i % len(healthy)]
            tablet = self._tablet_by_id(tablet_id)
            self._servers[target].assign_tablet(tablet)
            if tablet_id in splits.paths:
                report.recovery[tablet_id] = adopt_split_log(
                    self._servers[target], self.dfs, failed, tablet_id, fence=epoch
                )
            # The flip is the commit point of this tablet's failover.
            self._assignments[tablet_id] = target
            report.reassigned[tablet_id] = target
        return report

    # -- automatic failure detection (§3.3: the master monitors servers) ----------

    def enable_auto_failover(self) -> None:
        """Watch every server's liveness znode; when one disappears (its
        session expired — the server died), run permanent failover
        immediately.  New servers registered later are watched when they
        register."""
        self._auto_failover = True
        for name in list(self._servers):
            self._watch_server(name)

    def _watch_server(self, name: str) -> None:
        def on_event(event: str, path: str) -> None:
            if event != "deleted" or not getattr(self, "_auto_failover", False):
                return
            if not self.is_active:
                return  # a standby master leaves failover to the leader
            if name in self._servers:
                self.handle_permanent_failure(name)

        self.coordination.watch(f"/logbase/servers/{name}", on_event)

    # -- elastic scaling (§1 desiderata: scale out and back on demand) -----------

    def move_tablet(self, tablet_id: str, target: str) -> RecoveryReport:
        """Migrate one tablet from its current owner to ``target``.

        The tablet's records are split out of the source's log (which is
        in the shared DFS) into a per-tablet file; the target adopts it by
        replaying into its own log and indexes; then ownership flips and
        the source drops the tablet.  Reads keep working on the source
        until the flip, so the move is online.
        """
        source_name = self._assignments.get(tablet_id)
        if source_name is None:
            raise TabletNotFound(tablet_id)
        if source_name == target:
            return RecoveryReport()
        source = self._servers[source_name]
        tablet = self._tablet_by_id(tablet_id)

        def locate_tablet(table: str, key: bytes) -> str:
            for candidate in self._tablets.get(table, []):
                if candidate.covers(key):
                    return str(candidate.tablet_id)
            return ""

        epoch = self.catalog.fence_epochs.get(source_name, 0) + 1
        self.catalog.fence_epochs[source_name] = epoch
        splits = split_log_by_tablet(
            self.dfs,
            source_name,
            self._servers[target].machine,
            locate=locate_tablet,
            fence=epoch,
        )
        self._servers[target].assign_tablet(tablet)
        report = RecoveryReport()
        if tablet_id in splits.paths:
            report = adopt_split_log(
                self._servers[target], self.dfs, source_name, tablet_id, fence=epoch
            )
        self._assignments[tablet_id] = target
        source.unassign_tablet(tablet.tablet_id)
        return report

    def rebalance(self) -> dict[str, str]:
        """Even out tablet counts across live servers; returns the moves
        performed (tablet id -> new server)."""
        servers = self.live_servers()
        if not servers:
            return {}
        loads: dict[str, list[str]] = {name: [] for name in servers}
        for tablet_id, owner in self._assignments.items():
            if owner in loads:
                loads[owner].append(tablet_id)
        moves: dict[str, str] = {}
        while True:
            busiest = max(loads, key=lambda n: len(loads[n]))
            idlest = min(loads, key=lambda n: len(loads[n]))
            if len(loads[busiest]) - len(loads[idlest]) <= 1:
                return moves
            tablet_id = sorted(loads[busiest])[-1]
            self.move_tablet(tablet_id, idlest)
            loads[busiest].remove(tablet_id)
            loads[idlest].append(tablet_id)
            moves[tablet_id] = idlest

    def decommission(self, name: str) -> dict[str, str]:
        """Gracefully retire a server (scale back): move every tablet off
        it, then drop it from the membership.  Returns the moves."""
        if name not in self._servers:
            raise ServerDownError(f"unknown server {name}")
        owned = sorted(
            tablet_id for tablet_id, owner in self._assignments.items() if owner == name
        )
        remaining = [n for n in self.live_servers() if n != name]
        if owned and not remaining:
            raise ServerDownError("cannot decommission the last server")
        moves: dict[str, str] = {}
        for i, tablet_id in enumerate(owned):
            target = remaining[i % len(remaining)]
            self.move_tablet(tablet_id, target)
            moves[tablet_id] = target
        self.expire_server(name)
        self._servers.pop(name, None)
        return moves

    def _tablet_by_id(self, tablet_id: str) -> Tablet:
        for tablets in self._tablets.values():
            for tablet in tablets:
                if str(tablet.tablet_id) == tablet_id:
                    return tablet
        raise TabletNotFound(tablet_id)
