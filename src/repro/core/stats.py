"""Operational statistics: per-server and cluster-wide snapshots.

A production storage system exposes its internals; this module gathers
what LogBase's components already track — log sizes, index entry counts
and memory, read-cache hit rates, device counters, transaction outcomes —
into plain dataclasses and a text rendering for dashboards/debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cluster import LogBaseCluster
from repro.core.tablet_server import TabletServer


@dataclass(frozen=True)
class CacheStats:
    """Read-buffer effectiveness."""

    hits: int
    misses: int
    bytes_used: int
    entries: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class ServerStats:
    """One tablet server's state snapshot."""

    name: str
    serving: bool
    simulated_seconds: float
    tablets: int
    log_bytes: int
    log_segments: int
    next_lsn: int
    index_entries: int
    index_memory_bytes: int
    secondary_indexes: int
    cache: CacheStats | None
    block_cache: CacheStats | None = None
    counters: dict[str, float] = field(default_factory=dict)
    recovering_tablets: int = 0  # tablets owned but not yet redone
    last_recovery: dict | None = None  # RecoveryReport.to_dict() of last pass
    follower_tablets: int = 0  # read replicas hosted for tablets owned elsewhere


@dataclass(frozen=True)
class ClusterStats:
    """Whole-cluster snapshot.

    ``health`` is the derived-gauge snapshot — replica lag, tablet heat,
    recovery queues, lease health, breaker states and friends — nested
    ``{entity: {gauge: value}}``.  It comes from the *same* function the
    monitoring scraper samples (:func:`repro.obs.monitor.collect_health_gauges`),
    so this report and the time series can never disagree.
    """

    servers: tuple[ServerStats, ...]
    makespan_seconds: float
    total_log_bytes: int
    total_index_entries: int
    counters: dict[str, float] = field(default_factory=dict)
    health: dict[str, dict[str, float]] = field(default_factory=dict)


def collect_server_stats(server: TabletServer) -> ServerStats:
    """Snapshot one tablet server."""
    cache = None
    if server.read_cache is not None:
        cache = CacheStats(
            hits=server.read_cache.hits,
            misses=server.read_cache.misses,
            bytes_used=server.read_cache.bytes_used,
            entries=len(server.read_cache),
        )
    block_cache = None
    dfs_cache = server.dfs.block_cache_for(server.machine)
    if dfs_cache is not None:
        block_cache = CacheStats(
            hits=dfs_cache.hits,
            misses=dfs_cache.misses,
            bytes_used=dfs_cache.bytes_used,
            entries=len(dfs_cache),
        )
    return ServerStats(
        name=server.name,
        serving=server.serving,
        simulated_seconds=server.machine.clock.now,
        tablets=len(server.tablets),
        log_bytes=server.log.total_bytes(),
        log_segments=len(server.log.segments()),
        next_lsn=server.log.next_lsn,
        index_entries=sum(len(index) for index in server.indexes().values()),
        index_memory_bytes=server.index_memory_bytes(),
        secondary_indexes=len(server.secondary.indexes()),
        cache=cache,
        block_cache=block_cache,
        counters=server.machine.counters.snapshot(),
        recovering_tablets=len(server.recovering_tablets),
        last_recovery=(
            server.last_recovery.to_dict()
            if server.last_recovery is not None
            else None
        ),
        follower_tablets=len(server.followers),
    )


def collect_cluster_stats(cluster: LogBaseCluster) -> ClusterStats:
    """Snapshot the whole cluster."""
    from repro.obs.monitor import gauges_by_entity

    servers = tuple(collect_server_stats(server) for server in cluster.servers)
    return ClusterStats(
        servers=servers,
        makespan_seconds=cluster.elapsed_makespan(),
        total_log_bytes=sum(s.log_bytes for s in servers),
        total_index_entries=sum(s.index_entries for s in servers),
        counters=cluster.total_counters(),
        health=gauges_by_entity(cluster),
    )


def format_stats(stats: ClusterStats, tracer=None) -> str:
    """Human-readable rendering of a cluster snapshot.

    With a tracer (``cluster.tracer`` on a traced cluster) the "where did
    the time go" report — per-layer breakdown, latency histograms, and
    slowest traces with their critical paths — is appended.
    """
    lines = [
        f"cluster: {len(stats.servers)} servers, "
        f"makespan {stats.makespan_seconds:.4f}s, "
        f"log {stats.total_log_bytes:,} B, "
        f"{stats.total_index_entries:,} index entries",
    ]
    for server in stats.servers:
        state = "up" if server.serving else "down"
        cache = (
            f"cache {server.cache.hit_rate:.0%} hit"
            if server.cache is not None
            else "no cache"
        )
        block_cache = (
            f"blockcache {server.block_cache.hit_rate:.0%} hit"
            f"/{server.block_cache.bytes_used:,}B"
            if server.block_cache is not None
            else "no blockcache"
        )
        lines.append(
            f"  {server.name} [{state}] tablets={server.tablets} "
            f"log={server.log_bytes:,}B/{server.log_segments}seg "
            f"index={server.index_entries:,}e/{server.index_memory_bytes:,}B "
            f"{cache} {block_cache} lsn={server.next_lsn}"
        )
    interesting = (
        "disk.bytes_written",
        "disk.bytes_read",
        "disk.seeks",
        "net.messages",
        "blockcache.hits",
        "blockcache.misses",
        "log.read_many.records",
        "log.read_many.spans",
        "compaction.bytes_read",
        "compaction.bytes_written",
        "log.ingest_bytes",
        "dfs.hedge.fired",
        "dfs.hedge.wins",
        "breaker.trips",
        "admission.shed",
        "deadline.exceeded",
        "commit.groups",
        "commit.group_fanin",
        "commit.acks_deferred",
        "dfs.append_round_trips",
        "recovery.parallel_runs",
        "recovery.tablets_recovered",
        "recovery.rejected_ops",
        "migration.started",
        "migration.completed",
        "migration.aborted",
        "migration.records_caught_up",
        "migration.flip_seconds",
        "migration.splits",
        "migration.lease_rejects",
        "replica.reads_served",
        "replica.redirects",
        "replica.lag_records",
        "replica.tail_batches",
    )
    totals = "  ".join(
        f"{name}={stats.counters.get(name, 0):,.0f}" for name in interesting
    )
    lines.append(f"  totals: {totals}")
    for entity in sorted(stats.health):
        gauges = stats.health[entity]
        rendered = "  ".join(
            f"{name.removeprefix('gauge.')}={value:g}"
            for name, value in sorted(gauges.items())
        )
        lines.append(f"  health {entity}: {rendered}")
    if tracer is not None:
        from repro.obs.analyze import format_time_report

        lines.append("")
        lines.append(format_time_report(tracer))
    return "\n".join(lines)
