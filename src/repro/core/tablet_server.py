"""The LogBase tablet server (§3.6): log-only tablet serving.

Each server manages (i) a *single log instance* in the DFS holding data of
every tablet it serves, (ii) one in-memory multiversion index per column
group per tablet, and (iii) an optional read buffer.  A write is appended
to the log once, the index is updated with the returned pointer, and the
write is done — there is no memtable flush and no separate data file,
which is the design removing the WAL+Data write bottleneck.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from itertools import islice

from repro.config import LogBaseConfig
from repro.coordination.tso import TimestampOracle
from repro.core.follower import FollowerTablet, LogTailer
from repro.core.read_cache import ReadCache
from repro.core.tablet import Tablet, TabletId
from repro.dfs.filesystem import DFS
from repro.errors import (
    DFSError,
    FollowerLaggingError,
    InvalidLogPointer,
    ServerDownError,
    TabletMigratingError,
    TabletNotFound,
    TabletRecoveringError,
)
from repro.index.blink import BLinkTreeIndex
from repro.index.interface import MultiversionIndex
from repro.index.lsm import LSMTreeIndex
from repro.obs.trace import root_span, span
from repro.query.secondary import SecondaryIndexManager
from repro.sim.deadline import check_deadline
from repro.sim.health import AdmissionController
from repro.sim.machine import Machine
from repro.sim.metrics import (
    MIGRATION_LEASE_REJECTS,
    RECOVERY_REJECTED_OPS,
    REPLICA_READS_SERVED,
    REPLICA_REDIRECTS,
    SPAN_COMPACTION_PLAN,
    SPAN_COMPACTION_ROUND,
    SPAN_FOLLOWER_READ,
    SPAN_TS_APPEND_TXN,
    SPAN_TS_DELETE,
    SPAN_TS_READ,
    SPAN_TS_WRITE,
    SPAN_TS_WRITE_BATCH,
)
from repro.wal.compaction import (
    CompactionJob,
    CompactionResult,
    IncrementalCompactionJob,
)
from repro.wal.planner import CompactionPlanner
from repro.wal.record import LogPointer, LogRecord, RecordType
from repro.wal.repository import LogRepository

IndexKey = tuple[str, str]  # (tablet_id str, group name)

# Observed keys retained per tablet for median-split estimation.
KEY_SAMPLE_CAP = 128


class TabletServer:
    """One tablet-server process co-located with a datanode on a machine."""

    def __init__(
        self,
        name: str,
        machine: Machine,
        dfs: DFS,
        tso: TimestampOracle,
        config: LogBaseConfig | None = None,
    ) -> None:
        self.name = name
        self.machine = machine
        self.dfs = dfs
        self.tso = tso
        self.config = config if config is not None else LogBaseConfig()
        self.config.validate()
        self.log = LogRepository(
            dfs,
            machine,
            f"/logbase/{name}/log",
            self.config.segment_size,
            coalesce_gap=self.config.read_coalesce_gap,
            scan_prefetch=self.config.scan_prefetch_bytes,
        )
        self.tablets: dict[str, Tablet] = {}
        # table -> (sorted range-start keys, tablets in that order); built
        # lazily by _route, dropped on assign/unassign.
        self._route_cache: dict[str, tuple[list[bytes], list[Tablet]]] = {}
        self._indexes: dict[IndexKey, MultiversionIndex] = {}
        self.read_cache: ReadCache | None = (
            ReadCache(self.config.cache_budget_bytes)
            if self.config.read_cache_enabled
            else None
        )
        self._update_counters: dict[IndexKey, int] = {}
        self._index_generation = 0  # bumps when compaction replaces indexes
        self.secondary = SecondaryIndexManager()
        # Bounded in-flight queue model (gray-resilience admission
        # control); None — the default — admits everything, the seed
        # behaviour.
        self.admission: AdmissionController | None = (
            AdmissionController(self.config.admission_queue_depth)
            if self.config.gray_resilience
            and self.config.admission_queue_depth is not None
            else None
        )
        # Group-commit coordinator (config.group_commit gate): concurrent
        # writes submitted through submit_write coalesce into one DFS
        # replication round trip per group.  None — the default — keeps
        # the seed write path untouched.
        self.commit = self._new_commit_coordinator() if self.config.group_commit else None
        self.serving = True
        # Access heat per tablet id (client-facing op counts).  Pure
        # bookkeeping — no simulated cost — so the seed figures are
        # unaffected; fast recovery orders tablet bring-up by it.
        self.heat: dict[str, float] = {}
        # Tablets owned but not yet redone (fast recovery's serve-while-
        # recovering window); ops on them raise TabletRecoveringError.
        self.recovering_tablets: set[str] = set()
        # Live-migration state (config.live_migration gate; the empty
        # structures cost nothing on the seed path).  ``migrating_tablets``
        # holds tablets inside a fenced flip window (ops raise
        # TabletMigratingError); ``lease_until`` maps tablet id to the
        # ownership-lease expiry on *this machine's* clock; ``_key_samples``
        # keeps a bounded deterministic sample of accessed keys per tablet
        # so a hot tablet can be split at its median observed key.
        self.migrating_tablets: set[str] = set()
        self.lease_until: dict[str, float] = {}
        self._key_samples: dict[str, list[bytes]] = {}
        # Read-replica state (config.read_replicas gate; both dicts stay
        # empty — and cost nothing — on the seed path).  ``followers``
        # maps tablet id to the replica this server hosts for a tablet it
        # does NOT own; ``_tailers`` shares one log tailer per owner
        # because an owner keeps a single log for all its tablets.
        self.followers: dict[str, FollowerTablet] = {}
        self._tailers: dict[str, LogTailer] = {}
        # Last RecoveryReport this server's recovery produced (stats).
        self.last_recovery = None
        # Per-tablet redo-duration histogram of the last parallel recovery.
        self.recovery_histogram = None
        self._checkpoint_hook = None  # wired by CheckpointManager

    def _new_commit_coordinator(self):
        from repro.wal.group_commit import CommitCoordinator

        return CommitCoordinator(
            self.log,
            self.machine,
            max_delay=self.config.group_commit_max_delay,
            max_records=self.config.group_commit_batch,
            max_bytes=self.config.group_commit_max_bytes,
            pipeline=self.config.group_commit_pipeline,
            traced=self.config.tracing,
        )

    def _maint_span(self, name: str, **attrs):
        """A span for server-driven maintenance (compaction): may start a
        trace of its own on a traced cluster; inside a traced client op it
        nests, and on an untraced cluster it is a no-op."""
        if self.config.tracing:
            return root_span(name, self.machine, server=self.name, **attrs)
        return span(name, self.machine, server=self.name, **attrs)

    # -- lifecycle ------------------------------------------------------------------

    def _require_serving(self) -> None:
        if not self.serving or not self.machine.alive:
            raise ServerDownError(f"tablet server {self.name} is down")

    # -- fast-recovery serving state -----------------------------------------------

    def begin_tablet_recovery(self, tablet_ids) -> None:
        """Mark tablets as owned-but-recovering: ops on them are rejected
        with a retryable :class:`TabletRecoveringError` until their redo
        finishes (graceful degradation instead of a binary outage)."""
        self.recovering_tablets.update(str(t) for t in tablet_ids)

    def finish_tablet_recovery(self, tablet_id) -> None:
        """Flip one tablet back to serving the moment its redo completes."""
        self.recovering_tablets.discard(str(tablet_id))

    def _check_tablet_serving(self, tablet: Tablet) -> None:
        if self.recovering_tablets and str(tablet.tablet_id) in self.recovering_tablets:
            self.machine.counters.add(RECOVERY_REJECTED_OPS)
            raise TabletRecoveringError(
                f"tablet {tablet.tablet_id} on {self.name} is still recovering"
            )
        if self.config.live_migration:
            tablet_id = str(tablet.tablet_id)
            if tablet_id in self.migrating_tablets:
                raise TabletMigratingError(
                    f"tablet {tablet_id} on {self.name} is mid-handoff"
                )
            if not self.lease_valid(tablet_id):
                # The split-brain guard: a paused or partitioned owner whose
                # lease the heartbeat could not renew must stop serving —
                # ownership may already have flipped elsewhere.
                self.machine.counters.add(MIGRATION_LEASE_REJECTS)
                raise TabletMigratingError(
                    f"{self.name} ownership lease for {tablet_id} lapsed"
                )

    # -- live-migration serving state ------------------------------------------------

    def begin_tablet_migration(self, tablet_id) -> None:
        """Enter the fenced flip window: ops on the tablet are rejected
        with the retryable :class:`TabletMigratingError` until the handoff
        commits (or aborts back to this server)."""
        self.migrating_tablets.add(str(tablet_id))

    def finish_tablet_migration(self, tablet_id) -> None:
        """Leave the flip window (handoff committed elsewhere or aborted)."""
        self.migrating_tablets.discard(str(tablet_id))

    def grant_lease(self, tablet_id) -> None:
        """(Re)grant the ownership lease for one tablet, anchored on this
        machine's clock — a paused process cannot observe a fresher clock
        than its own, so expiry is judged where serving happens."""
        self.lease_until[str(tablet_id)] = (
            self.machine.clock.now + self.config.migration_lease_seconds
        )

    def revoke_lease(self, tablet_id) -> None:
        """Drop the ownership lease (the fenced flip fences a reachable
        source this way without waiting out the TTL)."""
        self.lease_until.pop(str(tablet_id), None)

    def lease_valid(self, tablet_id) -> bool:
        """Whether this server's ownership lease for the tablet is live."""
        until = self.lease_until.get(str(tablet_id))
        return until is not None and self.machine.clock.now <= until

    # -- read-replica (follower) serving ---------------------------------------------

    def follow_tablet(
        self, tablet: Tablet, owner_name: str, epoch: int
    ) -> FollowerTablet:
        """Host a read replica of ``tablet``, tailing ``owner_name``'s log.

        Idempotent for an unchanged (owner, epoch): the heartbeat calls
        this every pass.  A changed owner or a bumped fence epoch tears
        the old replica down and starts a fresh one — a follower must
        never keep applying a deposed owner's post-fence records.
        """
        self._require_serving()
        tablet_id = str(tablet.tablet_id)
        existing = self.followers.get(tablet_id)
        if (
            existing is not None
            and existing.owner_name == owner_name
            and existing.epoch == epoch
        ):
            return existing
        if existing is not None:
            self.unfollow_tablet(tablet_id)
        tailer = self._tailers.get(owner_name)
        if tailer is None:
            tailer = LogTailer(self.dfs, self.machine, owner_name, self.config)
            self._tailers[owner_name] = tailer
        follower = FollowerTablet(tablet, owner_name, epoch)
        tailer.subscribe(follower)
        self.followers[tablet_id] = follower
        return follower

    def unfollow_tablet(self, tablet_id) -> None:
        """Tear down the replica of one tablet (ownership changed, the
        placement moved it elsewhere, or this server was promoted)."""
        tablet_id = str(tablet_id)
        follower = self.followers.pop(tablet_id, None)
        if follower is None:
            return
        tailer = self._tailers.get(follower.owner_name)
        if tailer is not None:
            tailer.unsubscribe(tablet_id)
            if not tailer.members:
                del self._tailers[follower.owner_name]

    def tail_followed_logs(self) -> dict[str, float]:
        """One tail pass over every followed owner's log (heartbeat-driven).

        Returns the staleness each hosted replica had just *before* the
        pass, keyed by tablet id — the heartbeat-reported lag (``inf``
        for a replica that has never fully drained its owner's log)."""
        self._require_serving()
        now = self.machine.clock.now
        lags = {
            str(f.tablet.tablet_id): f.lag(now) for f in self.followers.values()
        }
        for tailer in self._tailers.values():
            tailer.tail(self.config.replica_tail_batch)
        return lags

    def _follower_for(self, table: str, key: bytes) -> FollowerTablet:
        for follower in self.followers.values():
            if follower.tablet.table == table and follower.tablet.covers(key):
                return follower
        self.machine.counters.add(REPLICA_REDIRECTS)
        raise FollowerLaggingError(
            f"{self.name} hosts no replica covering {table}:{key!r}"
        )

    def _check_follower_serving(
        self,
        follower: FollowerTablet,
        *,
        as_of: int | None,
        max_staleness: float | None,
    ) -> None:
        """The follower-mode op gate (next to the recovery/migration
        gates): a replica serves only inside its staleness bound."""
        limit = (
            max_staleness
            if max_staleness is not None
            else self.config.replica_max_staleness
        )
        lag = follower.lag(self.machine.clock.now)
        if lag > limit:
            self.machine.counters.add(REPLICA_REDIRECTS)
            raise FollowerLaggingError(
                f"replica of {follower.tablet.tablet_id} on {self.name} is "
                f"{lag:.3f}s stale (bound {limit:.3f}s)"
            )
        if as_of is not None and as_of > follower.watermark:
            self.machine.counters.add(REPLICA_REDIRECTS)
            raise FollowerLaggingError(
                f"replica of {follower.tablet.tablet_id} on {self.name} has "
                f"watermark {follower.watermark} < as_of {as_of}"
            )

    def follower_read(
        self,
        table: str,
        key: bytes,
        group: str,
        *,
        as_of: int | None = None,
        max_staleness: float | None = None,
    ) -> tuple[int, bytes] | None:
        """Bounded-staleness read from a hosted replica.

        Same contract as :meth:`read` but served from the replica's index
        and the *owner's* log segments read on this machine; raises the
        retryable :class:`FollowerLaggingError` when the replica cannot
        honour the staleness bound (the client falls back to the owner).
        """
        self._require_serving()
        check_deadline("follower read")
        with span(SPAN_FOLLOWER_READ, self.machine, table=table, group=group):
            follower = self._follower_for(table, key)
            self._check_follower_serving(
                follower, as_of=as_of, max_staleness=max_staleness
            )
            index = follower.index(group)
            entry = (
                index.lookup_latest(key)
                if as_of is None
                else index.lookup_asof(key, as_of)
            )
            if entry is None:
                self.machine.counters.add(REPLICA_READS_SERVED)
                return None
            tailer = self._tailers[follower.owner_name]
            try:
                record = tailer.repo.read(entry.pointer)
            except (InvalidLogPointer, DFSError) as exc:
                # The owner compacted this position away between tail
                # passes; the next pass re-points the entry at the sorted
                # segment that replaced it.
                self.machine.counters.add(REPLICA_REDIRECTS)
                raise FollowerLaggingError(
                    f"replica of {follower.tablet.tablet_id} on {self.name}: "
                    f"log position retired by the owner ({exc})"
                ) from exc
            self.machine.counters.add(REPLICA_READS_SERVED)
            if record.value is None:
                return None
            return entry.timestamp, record.value

    def follower_scan(
        self,
        table: str,
        group: str,
        start_key: bytes,
        end_key: bytes,
        *,
        as_of: int | None = None,
        max_staleness: float | None = None,
    ) -> list[tuple[bytes, int, bytes]]:
        """Bounded-staleness range scan over this server's replicas.

        Materialized (unlike the owner's lazy :meth:`range_scan`) so a
        staleness rejection or retired log position surfaces inside the
        RPC rather than mid-consumption on the client."""
        self._require_serving()
        check_deadline("follower range scan")
        rows: list[tuple[bytes, int, bytes]] = []
        with span(SPAN_FOLLOWER_READ, self.machine, table=table, group=group):
            followed = sorted(
                (
                    f
                    for f in self.followers.values()
                    if f.tablet.table == table
                    and f.tablet.key_range.start < end_key
                    and (
                        f.tablet.key_range.end is None
                        or f.tablet.key_range.end > start_key
                    )
                ),
                key=lambda f: f.tablet.key_range.start,
            )
            # Mirror _follower_for's coverage check: the hosted replicas
            # must jointly cover the requested range.  A client with a
            # stale follower route (placement rotates on live-set or
            # split changes) can land on a server hosting only *other*
            # tablets of the table — an empty result then silently drops
            # the target tablet's rows, so raise and let the client fall
            # back to the owner instead.
            cursor: bytes | None = start_key
            for follower in followed:
                if follower.tablet.key_range.start > cursor:
                    break
                fr_end = follower.tablet.key_range.end
                if fr_end is None:
                    cursor = None
                    break
                cursor = max(cursor, fr_end)
            if cursor is not None and cursor < end_key:
                self.machine.counters.add(REPLICA_REDIRECTS)
                raise FollowerLaggingError(
                    f"{self.name} hosts no replica covering "
                    f"{table}:[{start_key!r}, {end_key!r})"
                )
            batching = self.config.read_coalesce_gap is not None
            window = self.config.read_batch_size
            for follower in followed:
                self._check_follower_serving(
                    follower, as_of=as_of, max_staleness=max_staleness
                )
                tailer = self._tailers[follower.owner_name]
                entries = follower.index(group).latest_in_range(
                    start_key, end_key, as_of=as_of
                )
                try:
                    if not batching:
                        for entry in entries:
                            record = tailer.repo.read(entry.pointer)
                            if record.value is not None:
                                rows.append(
                                    (entry.key, entry.timestamp, record.value)
                                )
                        continue
                    entries = iter(entries)
                    while True:
                        batch = list(islice(entries, window))
                        if not batch:
                            break
                        records = tailer.repo.read_many(
                            [entry.pointer for entry in batch]
                        )
                        for entry, record in zip(batch, records):
                            if record.value is not None:
                                rows.append(
                                    (entry.key, entry.timestamp, record.value)
                                )
                except (InvalidLogPointer, DFSError) as exc:
                    self.machine.counters.add(REPLICA_REDIRECTS)
                    raise FollowerLaggingError(
                        f"replica of {follower.tablet.tablet_id} on "
                        f"{self.name}: log position retired by the owner "
                        f"({exc})"
                    ) from exc
            self.machine.counters.add(REPLICA_READS_SERVED)
        return rows

    def _touch_heat(self, tablet: Tablet, key: bytes | None = None) -> None:
        tablet_id = str(tablet.tablet_id)
        self.heat[tablet_id] = self.heat.get(tablet_id, 0.0) + 1.0
        if key is not None and self.config.live_migration:
            # Deterministic bounded key sample per tablet: fill to the cap,
            # then overwrite a heat-indexed slot (no RNG — replays are
            # byte-stable).  The median of the sample is the split key.
            sample = self._key_samples.setdefault(tablet_id, [])
            if len(sample) < KEY_SAMPLE_CAP:
                sample.append(key)
            else:
                sample[int(self.heat[tablet_id]) % KEY_SAMPLE_CAP] = key

    def crash(self) -> None:
        """Kill the server process: every in-memory structure is lost.

        The log and any checkpoint files survive in the DFS — that is the
        whole durability story (§3.4, Guarantee 1).  Commit groups that
        have not flushed lived only in memory: their members are failed,
        never acked."""
        self.serving = False
        if self.commit is not None:
            self.commit.abandon()
        self._indexes.clear()
        self._update_counters.clear()
        self.secondary.clear()
        self.heat.clear()
        self.recovering_tablets.clear()
        self.migrating_tablets.clear()
        self.lease_until.clear()
        self._key_samples.clear()
        self.followers.clear()
        self._tailers.clear()
        if self.read_cache is not None:
            self.read_cache.clear()

    def restart(self) -> None:
        """Bring the process back up with empty memory.  The caller runs
        recovery (:mod:`repro.core.recovery`) to rebuild the indexes."""
        # A machine-level kill (power failure) skips crash(), but memory
        # is lost all the same: drop any stale in-memory state so recovery
        # rebuilds from the log rather than trusting pre-crash indexes.
        self._indexes.clear()
        self._update_counters.clear()
        self.secondary.clear()
        self.heat.clear()
        self.recovering_tablets.clear()
        # Restarted processes come back lease-less: even though the idle
        # machine's clock did not advance while it was down, ownership may
        # have flipped — serving resumes only after the heartbeat (or the
        # master) grants a fresh lease.
        self.migrating_tablets.clear()
        self.lease_until.clear()
        self._key_samples.clear()
        # Replicas died with the process; the heartbeat re-places them and
        # the fresh tailers replay the owners' logs from the start.
        self.followers.clear()
        self._tailers.clear()
        self.log = LogRepository.reattach(
            self.dfs,
            self.machine,
            f"/logbase/{self.name}/log",
            self.config.segment_size,
            coalesce_gap=self.config.read_coalesce_gap,
            scan_prefetch=self.config.scan_prefetch_bytes,
        )
        if self.config.read_cache_enabled:
            self.read_cache = ReadCache(self.config.cache_budget_bytes)
        if self.commit is not None:
            # Anything still pending in the old coordinator died with the
            # process; the new one writes to the reattached log.
            self.commit.abandon()
        if self.config.group_commit:
            self.commit = self._new_commit_coordinator()
        self.serving = True

    # -- tablet assignment -------------------------------------------------------------

    def assign_tablet(self, tablet: Tablet) -> None:
        """Take responsibility for ``tablet``: create its group indexes."""
        if self.followers:
            # Promotion: a server that becomes the owner of a tablet it was
            # following serves authoritatively from now on.
            self.unfollow_tablet(tablet.tablet_id)
        self.tablets[str(tablet.tablet_id)] = tablet
        self._route_cache.pop(tablet.table, None)
        for group in tablet.schema.group_names:
            self._ensure_index(tablet.tablet_id, group)
        if self.config.live_migration:
            self.grant_lease(tablet.tablet_id)

    def unassign_tablet(self, tablet_id: TabletId) -> None:
        """Drop a tablet (after reassignment elsewhere)."""
        tablet = self.tablets.pop(str(tablet_id), None)
        if tablet is not None:
            self._route_cache.pop(tablet.table, None)
        for key in [k for k in self._indexes if k[0] == str(tablet_id)]:
            del self._indexes[key]
            self._update_counters.pop(key, None)
        self.revoke_lease(tablet_id)
        self.migrating_tablets.discard(str(tablet_id))
        self.heat.pop(str(tablet_id), None)
        self._key_samples.pop(str(tablet_id), None)

    def split_key(self, tablet_id) -> bytes | None:
        """Median of the tablet's observed-key sample (None if the sample
        is too thin to say anything)."""
        sample = sorted(self._key_samples.get(str(tablet_id), ()))
        if len(sample) < 2:
            return None
        return sample[len(sample) // 2]

    def split_tablet(self, old: Tablet, left: Tablet, right: Tablet) -> int:
        """Repartition ``old``'s in-memory state into ``left``/``right``.

        The log is untouched — the log *is* the database, so a split only
        re-buckets index entries by the new ranges (§5's argument for
        cheap migration applies doubly to splits).  Heat and key samples
        are divided by observed key side so the balancer's view stays
        continuous.  Returns the number of index entries moved.
        """
        old_id = str(old.tablet_id)
        self.tablets.pop(old_id, None)
        self.tablets[str(left.tablet_id)] = left
        self.tablets[str(right.tablet_id)] = right
        self._route_cache.pop(old.table, None)
        moved = 0
        for group in old.schema.group_names:
            old_index = self._indexes.pop((old_id, group), None)
            self._update_counters.pop((old_id, group), None)
            left_index = self._ensure_index(left.tablet_id, group)
            right_index = self._ensure_index(right.tablet_id, group)
            if old_index is None:
                continue
            for entry in old_index.entries():
                side = left_index if left.covers(entry.key) else right_index
                side.insert(entry.key, entry.timestamp, entry.pointer)
                moved += 1
            destroy = getattr(old_index, "destroy", None)
            if destroy is not None:
                destroy()
        old_heat = self.heat.pop(old_id, 0.0)
        sample = self._key_samples.pop(old_id, [])
        left_sample = [k for k in sample if left.covers(k)]
        right_sample = [k for k in sample if not left.covers(k)]
        left_share = len(left_sample) / len(sample) if sample else 0.5
        self.heat[str(left.tablet_id)] = old_heat * left_share
        self.heat[str(right.tablet_id)] = old_heat * (1.0 - left_share)
        self._key_samples[str(left.tablet_id)] = left_sample
        self._key_samples[str(right.tablet_id)] = right_sample
        if self.config.live_migration:
            self.revoke_lease(old_id)
            self.grant_lease(left.tablet_id)
            self.grant_lease(right.tablet_id)
        self.migrating_tablets.discard(old_id)
        return moved

    def _ensure_index(self, tablet_id: TabletId, group: str) -> MultiversionIndex:
        key = (str(tablet_id), group)
        index = self._indexes.get(key)
        if index is None:
            index = self._new_index(tablet_id, group)
            self._indexes[key] = index
            self._update_counters[key] = 0
        return index

    def _new_index(self, tablet_id: TabletId, group: str) -> MultiversionIndex:
        if self.config.index_kind == "lsm":
            # Generations keep run paths of a rebuilt (post-compaction)
            # index from colliding with its predecessor's files.
            return LSMTreeIndex(
                self.dfs,
                self.machine,
                f"/logbase/{self.name}/lsm/g{self._index_generation}/{tablet_id}/{group}",
            )
        return BLinkTreeIndex()

    def _route(self, table: str, key: bytes) -> Tablet:
        # Every read/write/apply routes, so this is a bisect over the
        # table's sorted range starts instead of a linear scan over all
        # tablets (ranges are disjoint; covers() rejects keys in gaps).
        cached = self._route_cache.get(table)
        if cached is None:
            tablets = sorted(
                (t for t in self.tablets.values() if t.table == table),
                key=lambda t: t.key_range.start,
            )
            cached = ([t.key_range.start for t in tablets], tablets)
            self._route_cache[table] = cached
        starts, tablets = cached
        position = bisect_right(starts, key) - 1
        if position >= 0 and tablets[position].covers(key):
            return tablets[position]
        raise TabletNotFound(f"server {self.name} has no tablet for {table}:{key!r}")

    def index_for(self, table: str, key: bytes, group: str) -> MultiversionIndex:
        """The index responsible for (table, key, group) on this server."""
        tablet = self._route(table, key)
        return self._ensure_index(tablet.tablet_id, group)

    def indexes(self) -> dict[IndexKey, MultiversionIndex]:
        """All (tablet, group) indexes (checkpointing, diagnostics)."""
        return dict(self._indexes)

    # -- write path (§3.6.1) -------------------------------------------------------------

    def write(
        self,
        table: str,
        key: bytes,
        group_values: dict[str, bytes],
        *,
        timestamp: int | None = None,
        txn_id: int = 0,
    ) -> int:
        """Insert/update one record's column groups.

        The write is transformed into log records, persisted with a single
        group-commit batch, and the per-group indexes are updated with the
        returned offsets.  Returns the version timestamp.
        """
        self._require_serving()
        with span(SPAN_TS_WRITE, self.machine, table=table):
            tablet = self._route(table, key)
            self._check_tablet_serving(tablet)
            self._touch_heat(tablet, key)
            if timestamp is None:
                timestamp = self.tso.next_timestamp()
            records = [
                LogRecord(
                    record_type=RecordType.WRITE,
                    txn_id=txn_id,
                    table=table,
                    tablet=str(tablet.tablet_id),
                    key=key,
                    group=group,
                    timestamp=timestamp,
                    value=value,
                )
                for group, value in group_values.items()
            ]
            appended = self.log.append_batch(records)
            for pointer, record in appended:
                self._apply_write(tablet, record, pointer)
            return timestamp

    def submit_write(
        self,
        table: str,
        key: bytes,
        group_values: dict[str, bytes],
        *,
        arrival: float | None = None,
        txn_id: int = 0,
    ):
        """Asynchronous write through the group-commit coordinator.

        The write joins (or leads) the open commit group and returns a
        :class:`~repro.wal.group_commit.CommitFuture` immediately; the
        per-group indexes are updated — and the write becomes visible to
        reads — only when the member's group reaches durability, at which
        point the future resolves with the appended pairs.  ``arrival``
        is the submission's virtual time (defaults to this server's
        clock).  Requires the ``group_commit`` gate.
        """
        self._require_serving()
        if self.commit is None:
            raise RuntimeError(
                "group commit is not enabled (LogBaseConfig.group_commit)"
            )
        tablet = self._route(table, key)
        self._check_tablet_serving(tablet)
        self._touch_heat(tablet, key)
        timestamp = self.tso.next_timestamp()
        records = [
            LogRecord(
                record_type=RecordType.WRITE,
                txn_id=txn_id,
                table=table,
                tablet=str(tablet.tablet_id),
                key=key,
                group=group,
                timestamp=timestamp,
                value=value,
            )
            for group, value in group_values.items()
        ]

        def on_durable(appended, _tablet=tablet):
            for pointer, record in appended:
                self._apply_write(_tablet, record, pointer)

        if arrival is None:
            arrival = self.machine.clock.now
        return self.commit.submit(
            arrival, records, on_durable=on_durable, token=timestamp
        )

    def write_batch(
        self,
        table: str,
        items: list[tuple[bytes, dict[str, bytes]]],
        *,
        txn_id: int = 0,
    ) -> list[int]:
        """Insert/update many records with a single log append.

        Bulk-loading clients buffer puts and ship them in batches, so the
        whole batch pays one replication round trip; each record still
        gets its own version timestamp.  Returns the timestamps in item
        order.
        """
        self._require_serving()
        with span(SPAN_TS_WRITE_BATCH, self.machine, table=table, items=len(items)):
            records: list[LogRecord] = []
            tablets: list[Tablet] = []  # routed once; reused in the apply loop
            timestamps: list[int] = []
            for key, group_values in items:
                tablet = self._route(table, key)
                self._check_tablet_serving(tablet)
                self._touch_heat(tablet, key)
                timestamp = self.tso.next_timestamp()
                timestamps.append(timestamp)
                for group, value in group_values.items():
                    tablets.append(tablet)
                    records.append(
                        LogRecord(
                            record_type=RecordType.WRITE,
                            txn_id=txn_id,
                            table=table,
                            tablet=str(tablet.tablet_id),
                            key=key,
                            group=group,
                            timestamp=timestamp,
                            value=value,
                        )
                    )
            appended = self.log.append_batch(records)
            for (pointer, record), tablet in zip(appended, tablets):
                self._apply_write(tablet, record, pointer)
            return timestamps

    def group_committer(self):
        """A :class:`~repro.txn.batch.GroupCommitter` over this server's
        log, sized by ``config.group_commit_batch`` (§3.7.2) — for callers
        that stream many independent records and want the batching
        optimization without managing batch boundaries themselves."""
        from repro.txn.batch import GroupCommitter

        return GroupCommitter(self.log, self.config.group_commit_batch)

    def append_transactional(
        self, records: list[LogRecord]
    ) -> list[tuple[LogPointer, LogRecord]]:
        """Persist a transaction's writes plus its commit record in one
        batch (§3.7.2), *without* touching the indexes.

        The transaction manager calls :meth:`apply_committed` afterwards;
        keeping the append separate from index application is what makes
        the commit record the visibility gate (Guarantee 3)."""
        self._require_serving()
        with span(SPAN_TS_APPEND_TXN, self.machine, records=len(records)):
            return self.log.append_batch(records)

    def apply_committed(self, appended: list[tuple[LogPointer, LogRecord]]) -> None:
        """Reflect a committed transaction's writes and deletes into the
        indexes (called only after the commit record is durable)."""
        for pointer, record in appended:
            if record.record_type is RecordType.WRITE:
                tablet = self._route(record.table, record.key)
                self._apply_write(tablet, record, pointer)
            elif record.record_type is RecordType.INVALIDATE:
                tablet = self._route(record.table, record.key)
                index = self._ensure_index(tablet.tablet_id, record.group)
                index.delete_key(record.key)
                self.secondary.on_delete(record.table, record.group, record.key)
                if self.read_cache is not None:
                    self.read_cache.invalidate(record.table, record.group, record.key)

    def _apply_write(self, tablet: Tablet, record: LogRecord, pointer: LogPointer) -> None:
        index = self._ensure_index(tablet.tablet_id, record.group)
        index.insert(record.key, record.timestamp, pointer)
        if self.read_cache is not None and record.value is not None:
            self.read_cache.put(
                record.table, record.group, record.key, record.timestamp, record.value
            )
        if record.value is not None and self.secondary.has_any():
            self.secondary.on_write(
                record.table, record.group, record.key, record.timestamp, record.value
            )
        self._bump_update_counter((str(tablet.tablet_id), record.group))

    def _bump_update_counter(self, index_key: IndexKey) -> None:
        self._update_counters[index_key] = self._update_counters.get(index_key, 0) + 1
        threshold = self.config.checkpoint_update_threshold
        if (
            threshold
            and self._update_counters[index_key] >= threshold
            and self._checkpoint_hook is not None
        ):
            self._update_counters[index_key] = 0
            self._checkpoint_hook(self)

    def set_checkpoint_hook(self, hook) -> None:
        """Install the callable invoked when an update counter trips
        (wired by :class:`~repro.core.checkpoint.CheckpointManager`)."""
        self._checkpoint_hook = hook

    # -- read path (§3.6.2) ----------------------------------------------------------------

    def read(
        self, table: str, key: bytes, group: str, *, as_of: int | None = None
    ) -> tuple[int, bytes] | None:
        """Get one record version.

        Returns ``(timestamp, value)`` of the latest version, or of the
        latest version at/before ``as_of`` for historical reads; None if
        the record does not exist (or is deleted).
        """
        self._require_serving()
        check_deadline("tablet read")
        with span(SPAN_TS_READ, self.machine, table=table, group=group):
            tablet = self._route(table, key)  # reject keys this server no longer owns
            self._check_tablet_serving(tablet)
            self._touch_heat(tablet, key)
            if self.read_cache is not None:
                cached = self.read_cache.get(table, group, key)
                if cached is not None:
                    # The cache always holds the newest version (every write
                    # refreshes it), so it also answers a snapshot read whose
                    # timestamp is at or past that version: no newer version
                    # can be visible to the snapshot.
                    if as_of is None or cached[0] <= as_of:
                        return cached
            index = self._ensure_index(tablet.tablet_id, group)
            entry = (
                index.lookup_latest(key)
                if as_of is None
                else index.lookup_asof(key, as_of)
            )
            if entry is None:
                return None
            record = self.log.read(entry.pointer)
            if record.value is None:
                return None
            if as_of is None and self.read_cache is not None:
                self.read_cache.put(table, group, key, entry.timestamp, record.value)
            return entry.timestamp, record.value

    def read_version_timestamp(self, table: str, key: bytes, group: str) -> int | None:
        """Current version timestamp only (MVOCC validation, §3.7.1)."""
        self._require_serving()
        tablet = self._route(table, key)
        self._check_tablet_serving(tablet)
        entry = self._ensure_index(tablet.tablet_id, group).lookup_latest(key)
        return None if entry is None else entry.timestamp

    # -- delete path (§3.6.3) ----------------------------------------------------------------

    def delete(self, table: str, key: bytes, group: str, *, txn_id: int = 0) -> int:
        """Delete a record from a column group.

        Step 1 removes all index entries; step 2 persists an invalidated
        log entry (null Data) so the delete survives restarts whose
        checkpoint still contains the removed entries.
        """
        self._require_serving()
        with span(SPAN_TS_DELETE, self.machine, table=table, group=group):
            tablet = self._route(table, key)
            self._check_tablet_serving(tablet)
            self._touch_heat(tablet, key)
            timestamp = self.tso.next_timestamp()
            index = self._ensure_index(tablet.tablet_id, group)
            removed = index.delete_key(key)
            self.secondary.on_delete(table, group, key)
            marker = LogRecord(
                record_type=RecordType.INVALIDATE,
                txn_id=txn_id,
                table=table,
                tablet=str(tablet.tablet_id),
                key=key,
                group=group,
                timestamp=timestamp,
                value=None,
            )
            self.log.append(marker)
            if self.read_cache is not None:
                self.read_cache.invalidate(table, group, key)
            return removed

    # -- scans (§3.6.4) ---------------------------------------------------------------------

    def range_scan(
        self,
        table: str,
        group: str,
        start_key: bytes,
        end_key: bytes,
        *,
        as_of: int | None = None,
    ):
        """Yield (key, timestamp, value) for the latest visible version of
        every key in [start_key, end_key) on this server.

        Walks the index in key order and follows each pointer into the
        log; before compaction those are scattered random reads, after
        compaction the pointers are clustered so consecutive reads become
        sequential — exactly the Figure 10 effect.

        With coalescing enabled (``read_coalesce_gap``) the pointers are
        drained in windows of ``read_batch_size`` entries and fetched via
        :meth:`LogRepository.read_many`, which merges near-adjacent
        pointers into single DFS reads.  With it disabled the seed
        behaviour is kept: one lazy read per entry, so callers that stop
        early (e.g. LIMIT queries) never read past their cursor.
        """
        self._require_serving()
        check_deadline("tablet range scan")
        batching = self.config.read_coalesce_gap is not None
        window = self.config.read_batch_size
        for tablet in sorted(
            (t for t in self.tablets.values() if t.table == table),
            key=lambda t: t.key_range.start,
        ):
            self._check_tablet_serving(tablet)
            self._touch_heat(tablet)
            index = self._ensure_index(tablet.tablet_id, group)
            entries = index.latest_in_range(start_key, end_key, as_of=as_of)
            if not batching:
                for entry in entries:
                    record = self.log.read(entry.pointer)
                    if record.value is not None:
                        yield entry.key, entry.timestamp, record.value
                continue
            entries = iter(entries)
            while True:
                batch = list(islice(entries, window))
                if not batch:
                    break
                records = self.log.read_many([entry.pointer for entry in batch])
                for entry, record in zip(batch, records):
                    if record.value is not None:
                        yield entry.key, entry.timestamp, record.value

    def full_scan(self, table: str, group: str):
        """Yield (key, timestamp, value) of current versions via a
        sequential pass over the log segments.

        "For each scanned record, the system checks its stored version
        with the current version maintained in the in-memory index to
        determine whether the record contains latest data" (§3.6.4).
        """
        self._require_serving()
        for file_no in self.log.segments():
            scope = self.log.segment_scope(file_no)
            if scope is not None and scope != (table, group):
                # Sorted segment holding a different (table, group):
                # the segment metadata map lets us skip it wholesale
                # (the §3.6.5 clustering payoff).
                continue
            for _, record in self.log.scan_segment(file_no):
                if (
                    record.record_type is not RecordType.WRITE
                    or record.table != table
                    or record.group != group
                    or record.value is None
                ):
                    continue
                try:
                    index = self.index_for(table, record.key, group)
                except TabletNotFound:
                    continue
                latest = index.lookup_latest(record.key)
                if latest is not None and latest.timestamp == record.timestamp:
                    yield record.key, record.timestamp, record.value

    # -- compaction (§3.6.5) --------------------------------------------------------------------

    def compact(self, *, retain_after: int | None = None) -> CompactionResult:
        """Run log compaction and swap in the rebuilt indexes.

        With ``config.incremental_compaction`` the round is split into
        size-tiered per-run plans and only the touched (table, group)
        indexes are swapped; otherwise the whole log is rewritten and
        every index rebuilt (the seed behaviour).

        Args:
            retain_after: optional retention cutoff — historical versions
                older than this timestamp are expired (each key's newest
                version always survives).
        """
        self._require_serving()
        with self._maint_span(SPAN_COMPACTION_ROUND):
            if self.config.incremental_compaction:
                return self._compact_incremental(retain_after=retain_after)
            return self._compact_full(retain_after=retain_after)

    def _compact_full(self, *, retain_after: int | None) -> CompactionResult:
        """The seed one-shot compaction: rewrite the whole log, rebuild
        every index (split out of :meth:`compact` for the span wrapper)."""
        inputs = self.log.segments()
        self.log.roll()

        # Records of tablets this server no longer hosts (moved away by a
        # rebalance or failover) are dropped: their new owner re-homed
        # them into its own log at adoption time.
        job = CompactionJob(
            self.log,
            self.config.max_versions,
            owned=self._owned_filter(),
            retain_after=retain_after,
        )
        result = job.run(inputs)
        self._index_generation += 1
        rebuilt: dict[IndexKey, MultiversionIndex] = {}
        for table, group, key, timestamp, pointer in result.index_entries:
            tablet = self._route(table, key)
            index_key = (str(tablet.tablet_id), group)
            index = rebuilt.get(index_key)
            if index is None:
                index = self._new_index(tablet.tablet_id, group)
                rebuilt[index_key] = index
            index.insert(key, timestamp, pointer)
        # Tablet/group combinations with no surviving data get fresh
        # empty indexes so lookups keep working.
        for tablet in self.tablets.values():
            for group in tablet.schema.group_names:
                rebuilt.setdefault(
                    (str(tablet.tablet_id), group), self._new_index(tablet.tablet_id, group)
                )
        # Spilled (LSM) indexes leave run files behind; destroy the old
        # generation's files before swapping in the rebuilt indexes.
        for index in self._indexes.values():
            destroy = getattr(index, "destroy", None)
            if destroy is not None:
                destroy()
        self._indexes = rebuilt
        # Any earlier checkpoint points into the segments just retired, so
        # it must be superseded before the old segments are truly "safely
        # discarded" (§3.6.5): write a fresh checkpoint over the rebuilt
        # indexes.
        if self._checkpoint_hook is not None:
            self._checkpoint_hook(self)
        return result

    def _owned_filter(self):
        """``(table, key) -> bool`` over the tablets this server hosts."""

        def owned(table: str, key: bytes) -> bool:
            return any(
                tablet.table == table and tablet.covers(key)
                for tablet in self.tablets.values()
            )

        return owned

    def _compact_incremental(self, *, retain_after: int | None) -> CompactionResult:
        """Size-tiered compaction: execute the planner's per-run plans,
        patching only the touched (table, group) indexes after each.

        Plans install one at a time (each guarded by its own
        ``CP_COMPACTION_MID`` crash point), and the checkpoint is
        refreshed after every install: the previous checkpoint's index
        files point into segments the plan just retired, so it must be
        superseded before the next plan may crash mid-round.
        """
        inputs = self.log.segments()
        self.log.roll()
        planner = CompactionPlanner(
            self.log,
            tier_fanout=self.config.compaction_tier_fanout,
            max_input_bytes=self.config.compaction_max_input_bytes,
        )
        plans = planner.plan(inputs)
        owned = self._owned_filter()
        combined = CompactionResult()
        for plan in plans:
            with span(SPAN_COMPACTION_PLAN, self.machine, kind=plan.kind):
                job = IncrementalCompactionJob(
                    self.log,
                    plan,
                    self.config.max_versions,
                    owned=owned,
                    retain_after=retain_after,
                )
                result = job.run()
                self._patch_indexes(result)
                if self._checkpoint_hook is not None:
                    self._checkpoint_hook(self)
                combined.merge(result)
        return combined

    def _patch_indexes(self, result: CompactionResult) -> None:
        """Swap fresh indexes in for only the scopes one plan touched.

        A touched scope's new index is the old index's entries minus
        those pointing into the plan's retired segments, plus the plan's
        surviving entries.  Untouched scopes keep their index objects —
        and, for LSM indexes, their generation's run files — alive.
        """
        retired = set(result.retired_segments)
        entries_by_scope: dict[
            tuple[str, str], list[tuple[bytes, int, LogPointer]]
        ] = defaultdict(list)
        for table, group, key, timestamp, pointer in result.index_entries:
            entries_by_scope[(table, group)].append((key, timestamp, pointer))
        # One generation bump per plan keeps a round's rebuilt LSM roots
        # (e.g. a merge plan and the tail plan touching the same scope)
        # from colliding on run paths.
        self._index_generation += 1
        for table, group in sorted(result.touched_scopes):
            entries = entries_by_scope.get((table, group), [])
            for tablet in self.tablets.values():
                if tablet.table != table or group not in tablet.schema.group_names:
                    continue
                index_key = (str(tablet.tablet_id), group)
                old = self._indexes.get(index_key)
                fresh = self._new_index(tablet.tablet_id, group)
                # The live index is authoritative for the visible set: a
                # plan's entries only *remap* versions the index already
                # holds (their old pointers fall in retired segments).  A
                # version absent from the live index was deleted after it
                # was logged — a merge plan re-reading old runs cannot see
                # the delete marker still sitting in the unsorted tail, so
                # inserting its entries unconditionally would resurrect
                # deleted keys.
                old_versions: set[tuple[bytes, int]] = set()
                if old is not None:
                    for entry in old.entries():
                        old_versions.add((entry.key, entry.timestamp))
                        if entry.pointer.file_no not in retired:
                            fresh.insert(entry.key, entry.timestamp, entry.pointer)
                for key, timestamp, pointer in entries:
                    if tablet.covers(key) and (
                        old is None or (key, timestamp) in old_versions
                    ):
                        fresh.insert(key, timestamp, pointer)
                if old is not None:
                    destroy = getattr(old, "destroy", None)
                    if destroy is not None:
                        destroy()
                self._indexes[index_key] = fresh
                self._update_counters.setdefault(index_key, 0)

    # -- secondary indexes (the paper's future-work extension) ------------------------------------

    def create_secondary_index(self, table: str, group: str, column: str):
        """Register a secondary index on ``table.column`` and backfill it
        from the current versions already on this server."""
        index = self.secondary.create(table, group, column)
        self.rebuild_secondary_indexes(only=index)
        return index

    def rebuild_secondary_indexes(self, only=None) -> int:
        """Rebuild secondary indexes from the primary indexes + log.

        Called after recovery (the redo path feeds primary indexes
        directly) or to backfill a newly created index.  Returns the
        number of entries fed."""
        targets = [only] if only is not None else self.secondary.indexes()
        fed = 0
        for index in targets:
            index.clear()
            for (tablet_id, group), primary in self._indexes.items():
                tablet = self.tablets.get(tablet_id)
                if tablet is None or tablet.table != index.table or group != index.group:
                    continue
                entries = iter(primary.latest_in_range(b"", b"\xff" * 64))
                while True:
                    batch = list(islice(entries, self.config.read_batch_size))
                    if not batch:
                        break
                    records = self.log.read_many([entry.pointer for entry in batch])
                    for entry, record in zip(batch, records):
                        if record.value is None:
                            continue
                        self.secondary.on_write(
                            index.table, group, entry.key, entry.timestamp, record.value
                        )
                        fed += 1
        return fed

    # -- accounting ------------------------------------------------------------------------------

    def index_memory_bytes(self) -> int:
        """Total resident index memory on this server."""
        return sum(index.memory_bytes() for index in self._indexes.values())

    def data_bytes(self) -> int:
        """Total live log bytes this server has written."""
        return self.log.total_bytes()
