"""An in-process distributed file system modelled after HDFS.

Provides the substrate LogBase stores everything in: a namenode holding
the namespace and block locations, datanodes holding replicated byte
blocks, rack-aware n-way synchronous replication, and append-only files
read by offset.  Charging of disk and network costs flows through the
:mod:`repro.sim` device models.
"""

from repro.dfs.block import BlockInfo
from repro.dfs.datanode import DataNode
from repro.dfs.namenode import NameNode
from repro.dfs.filesystem import DFS, DFSWriter, DFSReader

__all__ = ["BlockInfo", "DataNode", "NameNode", "DFS", "DFSWriter", "DFSReader"]
