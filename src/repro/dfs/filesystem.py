"""DFS facade: append-only files over replicated blocks.

Writes run a synchronous replication pipeline: the payload is appended to
the first replica (normally the writer's local datanode), streamed once
down the pipeline to the remaining replicas, and the append returns only
after every replica has acknowledged — mirroring HDFS's hflush semantics
that both LogBase and HBase depend on for durability (Guarantee 1).

Cost accounting: the writer's clock advances by its local disk write plus
one pipelined network transfer plus a replication acknowledgement latency;
each remote replica's machine clock advances by its own disk write.  With
every machine in the cluster simultaneously writing and receiving replica
streams, the cluster-wide makespan therefore reflects the 3x disk traffic
that n-way replication creates — the effect that bounds load throughput in
the paper's Figure 11.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.dfs.block import BlockInfo, FileMeta
from repro.dfs.block_cache import DEFAULT_CHUNK_SIZE, BlockCache
from repro.dfs.datanode import DataNode
from repro.dfs.namenode import NameNode
from repro.errors import (
    BlockCorruptionError,
    DataNodeDownError,
    DeadlineExceededError,
    DFSError,
    FileClosedError,
    FileNotFoundInDFS,
    ReplicaCorruptError,
)
from repro.obs.trace import span
from repro.sim.deadline import current_deadline
from repro.sim.failure import CP_DFS_APPEND, CP_DFS_REREPLICATE, crash_point
from repro.sim.health import GrayPolicy, HealthMonitor
from repro.sim.machine import Machine
from repro.sim.metrics import (
    DEADLINES_EXCEEDED,
    DFS_CORRUPT_REPLICAS,
    DFS_HEDGE_FIRED,
    DFS_HEDGE_LOSSES,
    DFS_HEDGE_WINS,
    DFS_APPEND_ROUND_TRIPS,
    DFS_READ_FAILOVERS,
    DFS_REREPLICATIONS,
    DFS_UNDER_REPLICATED,
    BREAKER_SKIPS,
    SPAN_DFS_APPEND,
    SPAN_DFS_HEDGE_LOSER,
    SPAN_DFS_HEDGE_WINNER,
    SPAN_DFS_READ,
)
from repro.sim.network import NetworkModel

DEFAULT_BLOCK_SIZE = 64 * 1024 * 1024


class _AckDeferral:
    """Replication-ack seconds collected instead of charged (see
    :func:`defer_replication_acks`)."""

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds = 0.0


_ACK_DEFERRAL: _AckDeferral | None = None


@contextmanager
def defer_replication_acks():
    """Collect the synchronous replication-ack wait instead of charging it
    to the writer's clock.

    Inside this scope an append still pays its disk writes and the
    pipelined data transfer, but the ack leg that normally stalls the
    writer is accumulated on the yielded collector.  The group-commit
    coordinator uses this to pipeline: the next group's data starts
    streaming while the previous group's acks drain, and each member is
    acked only once its own group's deferred wait has elapsed.  Scopes
    nest (the inner collector shadows the outer one, matching how one
    flush owns the pipeline at a time).
    """
    global _ACK_DEFERRAL
    previous = _ACK_DEFERRAL
    deferral = _AckDeferral()
    _ACK_DEFERRAL = deferral
    try:
        yield deferral
    finally:
        _ACK_DEFERRAL = previous


class DFS:
    """The distributed file system shared by every server in the cluster.

    Args:
        machines: hosts to run one datanode on each.
        replication: synchronous replication factor (paper default: 3).
        block_size: maximum bytes per block (paper default: 64 MB).
        block_cache_bytes: per-machine block-cache capacity; 0 disables
            caching entirely (reads hit the datanodes directly, the seed
            cost model).
        block_cache_chunk: cache fill/eviction unit in bytes.
        verify_reads: checksum-verify a replica before serving a read
            from it (requires ``checksum_replicas``); on mismatch the
            reader fails over to another replica instead of returning
            bad bytes.  Off by default — the seed read path.
        degraded_allocation: allocate new blocks on however many
            datanodes are live (queued for repair) instead of refusing
            writes when fewer than ``replication`` survive.  Off by
            default — the seed's strict behaviour.
        gray: gray-failure resilience policy (hedged replica reads,
            per-datanode circuit breakers); ``None`` — the default —
            disables the layer entirely and keeps the seed read path.
    """

    def __init__(
        self,
        machines: list[Machine],
        replication: int = 3,
        block_size: int = DEFAULT_BLOCK_SIZE,
        checksum_replicas: bool = False,
        block_cache_bytes: int = 0,
        block_cache_chunk: int = DEFAULT_CHUNK_SIZE,
        verify_reads: bool = False,
        degraded_allocation: bool = False,
        gray: GrayPolicy | None = None,
    ) -> None:
        if not machines:
            raise ValueError("a DFS needs at least one machine")
        if verify_reads and not checksum_replicas:
            raise ValueError("verify_reads requires checksum_replicas")
        self.block_size = block_size
        self.verify_reads = verify_reads
        self.gray = gray
        self.health: HealthMonitor | None = (
            HealthMonitor(gray) if gray is not None else None
        )
        self.block_cache_bytes = block_cache_bytes
        self.block_cache_chunk = block_cache_chunk
        self._block_caches: dict[str, BlockCache] = {}
        self.network: NetworkModel = machines[0].network
        self.namenode = NameNode(
            replication=min(replication, len(machines)),
            allow_degraded=degraded_allocation,
        )
        self.datanodes: dict[str, DataNode] = {}
        for machine in machines:
            node = DataNode(machine, checksum_replicas=checksum_replicas)
            self.datanodes[node.name] = node
            self.namenode.register_datanode(node.name, machine.rack)

    def rereplicate(self, strict: bool = True) -> int:
        """Restore the replication factor of under-replicated blocks.

        Real HDFS does this continuously when datanodes die; here it is a
        sweep: for every block with fewer live replicas than the
        replication factor, a surviving replica is copied to a live
        datanode that lacks one.  Targets are rack-aware (racks without a
        replica are preferred), dead entries are pruned from the block's
        locations, and a target holding a *stale* copy (e.g. a revived
        node) drops it and receives a fresh one.  Liveness is re-checked
        per block and per copy so that a source dying mid-pass fails over
        to another survivor.  Returns the number of new replicas created.

        Args:
            strict: raise on a block with no live replica (data loss).
                The background heartbeat pass uses ``strict=False``, which
                skips such blocks and leaves them queued.

        Raises:
            DFSError: in strict mode, if a block has no live replica left.
        """
        created = 0
        for path in self.namenode.list_files():
            for block in self.namenode.get_file(path).blocks:
                created += self._rereplicate_block(path, block, strict)
        return created

    def _rereplicate_block(self, path: str, block: BlockInfo, strict: bool) -> int:
        def lost() -> int:
            if strict:
                raise DFSError(
                    f"block {block.block_id} of {path} has no live replica"
                )
            return 0

        alive = self._alive()
        live = [loc for loc in block.locations if loc in alive]
        if not live:
            return lost()
        if len(live) != len(block.locations):
            block.locations[:] = live
        want = min(self.namenode.replication, len(alive))
        if len(live) >= want:
            self.namenode.clear_under_replicated(block.block_id)
            return 0
        crash_point(CP_DFS_REREPLICATE, block=block.block_id, path=path)
        # Rack-aware target choice: racks not yet holding a replica first.
        # Sorted so the sweep is deterministic (``alive`` is a set and
        # string hashing is randomized per process).
        live_racks = {self.namenode.rack_of(name) for name in live}
        candidates = sorted(name for name in alive if name not in live)
        targets = [
            n for n in candidates if self.namenode.rack_of(n) not in live_racks
        ] + [n for n in candidates if self.namenode.rack_of(n) in live_racks]
        created = 0
        for target_name in targets[: want - len(live)]:
            # The source may have died mid-pass (e.g. a fault fired at the
            # crash point above): fall back to any remaining live replica.
            source = next(
                (self.datanodes[n] for n in live if self.datanodes[n].alive),
                None,
            )
            if source is None:
                block.locations[:] = [n for n in live if self.datanodes[n].alive]
                return created if created else lost()
            target = self.datanodes[target_name]
            if not target.alive:
                continue
            if not self.network.reachable(source.name, target_name):
                # Partitioned off from the source: leave the block queued;
                # the heartbeat retries after the partition heals.
                continue
            if target.has_block(block.block_id):
                # Stale copy from before this node was revived; replace it.
                target.drop_replica(block.block_id)
            payload, _ = source.read_replica(
                block.block_id, 0, source.block_length(block.block_id)
            )
            source.machine.send(target.machine, len(payload))
            target.create_replica(block.block_id)
            target.append_replica(block.block_id, payload)
            block.locations.append(target_name)
            live.append(target_name)
            target.machine.counters.add(DFS_REREPLICATIONS)
            created += 1
        if len(live) >= want:
            self.namenode.clear_under_replicated(block.block_id)
        else:
            self.namenode.report_under_replicated(block.block_id)
        return created

    def heartbeat(self) -> int:
        """One background repair tick, as the namenode would run off
        datanode heartbeats: if any block has been reported
        under-replicated, sweep and restore replication.  Non-strict —
        blocks with no live replica stay queued rather than raising from
        a background pass.  Returns replicas created."""
        if not self.namenode.under_replicated:
            return 0
        return self.rereplicate(strict=False)

    def add_machine(self, machine: Machine) -> DataNode:
        """Start a datanode on a newly provisioned machine (elastic
        scale-out: new blocks may be placed on it immediately)."""
        node = DataNode(machine)
        self.datanodes[node.name] = node
        self.namenode.register_datanode(node.name, machine.rack)
        return node

    # -- helpers -------------------------------------------------------------

    def _alive(self) -> set[str]:
        return {name for name, node in self.datanodes.items() if node.alive}

    def datanode(self, name: str) -> DataNode:
        """The datanode co-located on machine ``name``."""
        return self.datanodes[name]

    # -- block caches ---------------------------------------------------------

    def block_cache_for(self, machine: Machine) -> BlockCache | None:
        """``machine``'s block cache (created lazily), or None when block
        caching is disabled for this DFS."""
        if self.block_cache_bytes <= 0:
            return None
        cache = self._block_caches.get(machine.name)
        if cache is None:
            cache = BlockCache(
                self.block_cache_bytes,
                chunk_size=self.block_cache_chunk,
                counters=machine.counters,
            )
            self._block_caches[machine.name] = cache
        return cache

    def drop_block_caches(self) -> None:
        """Empty every machine's block cache (cold-read experiments)."""
        for cache in self._block_caches.values():
            cache.clear()

    def _invalidate_cached_tail(self, block_id: int, old_length: int) -> None:
        for cache in self._block_caches.values():
            cache.invalidate_tail(block_id, old_length)

    def _invalidate_cached_block(self, block_id: int) -> None:
        for cache in self._block_caches.values():
            cache.invalidate_block(block_id)

    # -- namespace operations -------------------------------------------------

    def create(self, path: str, writer: Machine) -> "DFSWriter":
        """Create ``path`` and return an append-only writer bound to
        ``writer`` (the machine doing the writing)."""
        self.namenode.create_file(path)
        return DFSWriter(self, path, writer)

    def open_for_append(self, path: str, writer: Machine) -> "DFSWriter":
        """Reopen an existing file for further appends."""
        self.namenode.get_file(path)
        return DFSWriter(self, path, writer)

    def open(self, path: str, reader: Machine) -> "DFSReader":
        """Open ``path`` for positional reads on behalf of ``reader``."""
        meta = self.namenode.get_file(path)
        return DFSReader(self, meta, reader)

    def exists(self, path: str) -> bool:
        """Whether ``path`` exists."""
        return self.namenode.exists(path)

    def delete(self, path: str) -> None:
        """Delete ``path`` and drop all of its replicas."""
        meta = self.namenode.delete_file(path)
        for block in meta.blocks:
            self._invalidate_cached_block(block.block_id)
            self.namenode.clear_under_replicated(block.block_id)
            for location in block.locations:
                node = self.datanodes.get(location)
                if node is not None and node.alive:
                    node.drop_replica(block.block_id)

    def rename(self, src: str, dst: str) -> None:
        """Atomically rename ``src`` to ``dst``."""
        self.namenode.rename(src, dst)

    def list_files(self, prefix: str = "") -> list[str]:
        """Paths under ``prefix``, sorted."""
        return self.namenode.list_files(prefix)

    def file_length(self, path: str) -> int:
        """Length of ``path`` in bytes."""
        return self.namenode.get_file(path).length

    # -- replication internals -------------------------------------------------

    def _append_to_block(self, block: BlockInfo, data: bytes, writer: Machine) -> None:
        """Run the synchronous replication pipeline for one append.

        A replica that is dead or unreachable — whether it failed before
        this append or dies mid-pipeline — is pruned from the block's
        locations and counted in ``dfs.under_replicated``; the write
        completes on the survivors (HDFS pipeline recovery) and the
        heartbeat pass restores the replication factor later.
        """
        # Only the partial chunk at the old tail can hold stale cached
        # bytes after this append; full chunks are immutable.
        self._invalidate_cached_tail(block.block_id, block.length)
        crash_point(CP_DFS_APPEND, block=block.block_id, writer=writer.name)
        writer.counters.add(DFS_APPEND_ROUND_TRIPS)
        live: list[DataNode] = []
        dead: list[str] = []
        for name in block.locations:
            node = self.datanodes[name]
            if node.alive and self.network.reachable(writer.name, name):
                live.append(node)
            else:
                dead.append(name)
        if not live:
            raise DFSError(f"no live replica for block {block.block_id}")
        primary, *secondaries = live
        # The writer streams to the primary (loopback when co-located)...
        writer.send(primary.machine, len(data))
        primary.append_replica(block.block_id, data)
        # ...which pipelines once to the remaining replicas; remote disks pay
        # their own write cost on their own clocks.  A limping link slows
        # both the replica transfer and that replica's ack leg, so a slow
        # link inside the pipeline stretches the synchronous append — the
        # gray failure mode the link-limp chaos schedule exercises.
        acked = 0.0
        for replica in secondaries:
            # A fault may kill or partition a secondary between the liveness
            # check above and its turn in the pipeline; drop it and go on.
            if not replica.alive or not self.network.reachable(
                primary.name, replica.name
            ):
                dead.append(replica.name)
                continue
            primary.machine.counters.add("net.bytes_sent", len(data))
            replica.machine.clock.advance(
                self.network.transfer_cost(
                    len(data), a=primary.name, b=replica.name
                )
            )
            replica.append_replica(block.block_id, data)
            acked += self.network.links.factor(primary.name, replica.name)
        # Synchronous ack travels back up the pipeline before return —
        # unless a group-commit flush is deferring acks to overlap the
        # next group's data stream with this one's ack drain.
        ack_wait = self.network.latency * acked
        if _ACK_DEFERRAL is not None:
            _ACK_DEFERRAL.seconds += ack_wait
        else:
            writer.clock.advance(ack_wait)
        block.length += len(data)
        if dead:
            self._prune_replicas(block, dead, writer)

    def _prune_replicas(
        self, block: BlockInfo, dead: list[str], machine: Machine
    ) -> None:
        """Drop failed replicas from ``block``'s locations and queue the
        block for heartbeat-driven re-replication."""
        block.locations[:] = [n for n in block.locations if n not in dead]
        machine.counters.add(DFS_UNDER_REPLICATED, len(dead))
        self.namenode.report_under_replicated(block.block_id)


class DFSWriter:
    """Append-only handle on a DFS file.

    Appends that overflow the current block allocate a new one; an append
    never spans a block boundary unless the payload itself is bigger than
    a block, in which case it is split.
    """

    def __init__(self, dfs: DFS, path: str, writer: Machine) -> None:
        self._dfs = dfs
        self._path = path
        self._writer = writer
        self._closed = False

    @property
    def path(self) -> str:
        """The file being written."""
        return self._path

    @property
    def length(self) -> int:
        """Current file length (== offset of the next append)."""
        return self._dfs.namenode.get_file(self._path).length

    def append(self, data: bytes) -> int:
        """Durably append ``data``; returns the starting file offset.

        The call returns only after every replica holds the bytes
        (synchronous replication).

        Raises:
            FileClosedError: if the writer has been closed.
        """
        if self._closed:
            raise FileClosedError(self._path)
        with span(SPAN_DFS_APPEND, self._writer, bytes=len(data)):
            meta = self._dfs.namenode.get_file(self._path)
            start_offset = meta.length
            remaining = memoryview(data)
            while len(remaining) > 0:
                block = self._current_block(meta)
                room = self._dfs.block_size - block.length
                chunk = bytes(remaining[:room])
                remaining = remaining[room:] if room < len(remaining) else remaining[len(remaining):]
                self._dfs._append_to_block(block, chunk, self._writer)
            return start_offset

    def _current_block(self, meta: FileMeta) -> BlockInfo:
        if meta.blocks and meta.blocks[-1].length < self._dfs.block_size:
            return meta.blocks[-1]
        block = self._dfs.namenode.allocate_block(
            self._path, self._writer.name, self._dfs._alive()
        )
        for location in block.locations:
            self._dfs.datanodes[location].create_replica(block.block_id)
        return block

    def close(self) -> None:
        """Finalize the file; further appends raise."""
        self._closed = True
        self._dfs.namenode.get_file(self._path).closed = True


class DFSReader:
    """Positional reader over a DFS file.

    Reads prefer the replica co-located with the reader (HDFS short-circuit
    reads), then any replica on the reader's rack, then any live replica.
    """

    def __init__(self, dfs: DFS, meta: FileMeta, reader: Machine) -> None:
        self._dfs = dfs
        self._meta = meta
        self._reader = reader

    @property
    def length(self) -> int:
        """Current file length."""
        return self._meta.length

    @property
    def machine(self) -> Machine:
        """The machine this reader charges costs to."""
        return self._reader

    def refresh(self) -> None:
        """Re-fetch the file's metadata from the namenode.

        Lets a long-lived reader observe appends that happened after it
        was opened without re-opening the file (the log repository keeps
        one reader per segment across appends)."""
        self._meta = self._dfs.namenode.get_file(self._meta.path)

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting at file ``offset``.

        Raises:
            FileNotFoundInDFS: if the range is beyond the end of file.
        """
        if offset + length > self._meta.length:
            raise FileNotFoundInDFS(
                f"read past EOF of {self._meta.path}: "
                f"offset={offset} length={length} file={self._meta.length}"
            )
        # Anchored on the READER: remote disk waits and transfers are
        # mirror-charged to the reader's clock by _read_from_block, so
        # the span's own duration already covers them.
        with span(SPAN_DFS_READ, self._reader, bytes=length):
            out = bytearray()
            remaining = length
            pos = offset
            for block in self._meta.blocks:
                if remaining == 0:
                    break
                if pos >= block.length:
                    pos -= block.length
                    continue
                take = min(block.length - pos, remaining)
                out.extend(self._read_from_block(block, pos, take))
                remaining -= take
                pos = 0
            return bytes(out)

    def read_all(self) -> bytes:
        """Read the whole file sequentially."""
        return self.read(0, self._meta.length)

    def _read_from_block(self, block: BlockInfo, offset: int, length: int) -> bytes:
        cache = self._dfs.block_cache_for(self._reader)
        if cache is not None:
            return self._read_through_cache(cache, block, offset, length)
        payload, cost, node = self._failover_read(block, offset, length)
        if node.machine is not self._reader:
            # Remote read: the reader waits for the remote disk + transfer.
            self._reader.clock.advance(
                cost
                + self._dfs.network.transfer_cost(
                    length, a=node.name, b=self._reader.name
                )
            )
            self._reader.counters.add("net.bytes_received", length)
        else:
            self._reader.clock.advance(self._dfs.network.local_latency)
        return payload

    def _read_through_cache(
        self, cache: "BlockCache", block: BlockInfo, offset: int, length: int
    ) -> bytes:
        """Serve the range chunk-by-chunk through the reader's block cache.

        A hit costs memory only (the per-call local latency below); a miss
        reads the *whole* chunk from a replica — one seek plus a
        chunk-sized transfer charged exactly as a direct read of that
        range would be — and installs it for later hits.
        """
        chunk_size = cache.chunk_size
        self._reader.clock.advance(self._dfs.network.local_latency)
        parts: list[bytes] = []
        first = offset // chunk_size
        last = (offset + length - 1) // chunk_size
        for chunk_no in range(first, last + 1):
            chunk_start = chunk_no * chunk_size
            data = cache.get(block.block_id, chunk_no)
            if data is None:
                take = min(chunk_size, block.length - chunk_start)
                data, cost, node = self._failover_read(block, chunk_start, take)
                if node.machine is not self._reader:
                    self._reader.clock.advance(
                        cost
                        + self._dfs.network.transfer_cost(
                            take, a=node.name, b=self._reader.name
                        )
                    )
                    self._reader.counters.add("net.bytes_received", take)
                cache.put(block.block_id, chunk_no, data)
            lo = max(offset, chunk_start) - chunk_start
            hi = min(offset + length, chunk_start + len(data)) - chunk_start
            parts.append(data[lo:hi])
        return b"".join(parts)

    def _serve_estimate(self, node: DataNode, length: int) -> float:
        """Estimated seconds for ``node`` to serve a ``length``-byte read
        to this reader (disk + transfer for remote replicas), without
        charging anything.  Reflects disk and link slowdowns, which is
        how hedging and deadline enforcement see a limping replica
        *before* committing to it."""
        est = node.read_cost(length)
        if node.machine is not self._reader:
            est += self._dfs.network.transfer_cost(
                length, a=node.name, b=self._reader.name
            )
        return est

    def _observe_health(self, node: DataNode, latency: float) -> None:
        health = self._dfs.health
        if health is not None:
            health.observe(
                node.name,
                latency,
                now=self._reader.clock.now,
                counters=self._reader.counters,
            )

    def _failover_read(
        self, block: BlockInfo, offset: int, length: int
    ) -> tuple[bytes, float, DataNode]:
        """Read a range, failing over across replicas.

        Candidates are tried in locality order (local, rack, any), with
        replicas behind an open circuit breaker demoted to last when the
        gray-resilience layer is on.  A candidate that turns out dead,
        holds a short/stale copy, or — when the DFS verifies reads —
        fails checksum verification is pruned from the block's locations
        and the next replica is tried; failed attempts charge nothing
        (liveness comes from heartbeats).

        Under an ambient deadline, a candidate whose estimated cost
        exceeds the remaining budget is skipped (deadline-aware
        failover); if *no* candidate fits, the reader charges only the
        remaining budget and raises :class:`DeadlineExceededError` —
        never the unbounded cost of waiting out a limping replica.

        With hedging enabled, a candidate whose estimate exceeds the
        hedging delay races a backup replica and the cheaper simulated
        completion wins (see :meth:`_hedged_read`).

        Returns:
            ``(payload, disk_seconds, serving_node)``.

        Raises:
            DeadlineExceededError: deadline expired, or no replica can
                serve within the remaining budget.
            DataNodeDownError: if no live, reachable replica remains.
            ReplicaCorruptError / BlockCorruptionError: if every remaining
                replica is damaged.
        """
        gray = self._dfs.gray
        deadline = current_deadline()
        last_exc: Exception | None = None
        starved = False  # some replica was skipped only for deadline reasons
        candidates = self._replica_candidates(block)
        for i, node in enumerate(candidates):
            est = None
            if deadline is not None:
                est = self._serve_estimate(node, length)
                if est > deadline.remaining():
                    starved = True
                    continue
            if self._dfs.verify_reads and not node.verify_replica(block.block_id):
                self._drop_bad_replica(block, node, corrupt=True)
                last_exc = ReplicaCorruptError(
                    f"replica of block {block.block_id} on {node.name} "
                    f"failed checksum verification"
                )
                continue
            hedge = None
            if gray is not None and gray.hedge_reads and self._dfs.health is not None:
                if est is None:
                    est = self._serve_estimate(node, length)
                delay = self._dfs.health.hedge_delay()
                if est > delay:
                    hedge = self._pick_hedge(candidates[i + 1 :], block)
            if hedge is not None:
                result = self._hedged_read(
                    block, offset, length, node, hedge, est, delay
                )
                if result is not None:
                    return result
                last_exc = DataNodeDownError(
                    f"hedged replicas of block {block.block_id} failed"
                )
                continue
            try:
                payload, cost = node.read_replica(block.block_id, offset, length)
            except (DataNodeDownError, BlockCorruptionError) as exc:
                self._drop_bad_replica(
                    block, node, corrupt=isinstance(exc, BlockCorruptionError)
                )
                last_exc = exc
                continue
            latency = cost
            if node.machine is not self._reader:
                latency += self._dfs.network.transfer_cost(
                    length, a=node.name, b=self._reader.name
                )
            self._observe_health(node, latency)
            return payload, cost, node
        if starved and deadline is not None:
            # Every remaining replica would blow the budget: spend what is
            # left of it (the time a real client burns before timing out)
            # and fail bounded instead of charging the limped read.
            remaining = deadline.remaining()
            if remaining > 0:
                self._reader.clock.advance(remaining)
            self._reader.counters.add(DEADLINES_EXCEEDED)
            raise DeadlineExceededError(
                f"no replica of block {block.block_id} can serve "
                f"{length} bytes within the remaining deadline budget"
            )
        if last_exc is not None:
            raise last_exc
        raise DataNodeDownError(
            f"all replicas of block {block.block_id} are down"
        )

    def _pick_hedge(
        self, backups: list[DataNode], block: BlockInfo
    ) -> DataNode | None:
        """The first viable hedge target among the remaining candidates:
        alive, breaker-allowed, and (when verification is on) holding a
        checksum-clean replica.  Verification charges nothing."""
        health = self._dfs.health
        now = self._reader.clock.now
        for node in backups:
            if not node.alive:
                continue
            if health is not None and not health.allow(node.name, now):
                continue
            if self._dfs.verify_reads and not node.verify_replica(block.block_id):
                continue
            return node
        return None

    def _hedged_read(
        self,
        block: BlockInfo,
        offset: int,
        length: int,
        primary: DataNode,
        hedge: DataNode,
        primary_est: float,
        delay: float,
    ) -> tuple[bytes, float, DataNode] | None:
        """Race ``primary`` against ``hedge`` and take the cheaper
        simulated completion.

        The hedge request fires ``delay`` seconds after the primary, so
        its effective completion is ``delay + its estimate``; the winner
        is whichever finishes first.  The winner's replica read is
        actually performed (charging its machine's disk as usual); the
        loser is cancelled, charged only up to the winner's completion —
        and its machine's disk head is displaced, since the abandoned
        read really moved it.  The loser's *estimated* latency still
        feeds the health monitor, so breakers trip on replicas that
        hedging routes around.

        Returns ``(payload, disk_seconds, winner)`` shaped exactly like a
        plain failover read, or None when the winner's read failed.
        """
        reader = self._reader
        hedge_est = delay + self._serve_estimate(hedge, length)
        if primary_est <= hedge_est:
            winner, loser = primary, hedge
            winner_completion = primary_est
            loser_busy = max(0.0, winner_completion - delay)
        else:
            winner, loser = hedge, primary
            winner_completion = hedge_est
            loser_busy = winner_completion
        reader.counters.add(DFS_HEDGE_FIRED)
        with span(SPAN_DFS_HEDGE_WINNER, reader, node=winner.name):
            try:
                payload, cost = winner.read_replica(block.block_id, offset, length)
            except (DataNodeDownError, BlockCorruptionError) as exc:
                self._drop_bad_replica(
                    block, winner, corrupt=isinstance(exc, BlockCorruptionError)
                )
                return None
            if winner is hedge:
                reader.counters.add(DFS_HEDGE_WINS)
                # The reader sat out the hedging delay before the backup
                # request even fired; the backup's own cost is charged by the
                # caller exactly like any served read.
                reader.clock.advance(delay)
            else:
                reader.counters.add(DFS_HEDGE_LOSSES)
        # Cancel the loser: its machine was busy only until the winner
        # completed.  When the loser shares the reader's machine the busy
        # time overlaps the reader's own wait on the same clock, so only
        # the displaced disk head is modelled, not a double charge.  The
        # loser span is ``background``: parallel work that never extends
        # the operation's latency, but closed all the same so chaos runs
        # leave no orphan spans.
        with span(SPAN_DFS_HEDGE_LOSER, loser.machine, background=True,
                  node=loser.name):
            if loser.machine is not reader:
                loser.machine.clock.advance(min(loser.read_cost(length), loser_busy))
            loser.machine.disk.invalidate_head()
        self._observe_health(loser, self._serve_estimate(loser, length))
        winner_latency = cost
        if winner.machine is not reader:
            winner_latency += self._dfs.network.transfer_cost(
                length, a=winner.name, b=reader.name
            )
        self._observe_health(winner, winner_latency)
        return payload, cost, winner

    def _drop_bad_replica(
        self, block: BlockInfo, node: DataNode, corrupt: bool
    ) -> None:
        self._dfs._prune_replicas(block, [node.name], self._reader)
        self._reader.counters.add(DFS_READ_FAILOVERS)
        if corrupt:
            self._reader.counters.add(DFS_CORRUPT_REPLICAS)

    def _replica_candidates(self, block: BlockInfo) -> list[DataNode]:
        """Live, reachable replicas in the order reads should try them:
        the reader's local datanode, then same-rack, then the rest (the
        seed's ``_pick_replica`` preference, extended to a full ordering
        for failover).

        With the gray-resilience layer on, replicas whose circuit
        breaker is open are demoted behind every allowed replica: a
        limping-but-alive node stops being anyone's first choice while
        staying available as the read of last resort.
        """
        live = [
            self._dfs.datanodes[name]
            for name in block.locations
            if self._dfs.datanodes[name].alive
            and self._dfs.network.reachable(self._reader.name, name)
        ]
        local = [n for n in live if n.machine is self._reader]
        rack = [
            n
            for n in live
            if n.machine is not self._reader
            and n.machine.rack == self._reader.rack
        ]
        rest = [n for n in live if n not in local and n not in rack]
        ordered = local + rack + rest
        health = self._dfs.health
        if health is not None and len(ordered) > 1:
            now = self._reader.clock.now
            blocked = [n for n in ordered if not health.allow(n.name, now)]
            if blocked and len(blocked) < len(ordered):
                self._reader.counters.add(BREAKER_SKIPS, len(blocked))
                ordered = [n for n in ordered if n not in blocked] + blocked
        return ordered
