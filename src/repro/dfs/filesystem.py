"""DFS facade: append-only files over replicated blocks.

Writes run a synchronous replication pipeline: the payload is appended to
the first replica (normally the writer's local datanode), streamed once
down the pipeline to the remaining replicas, and the append returns only
after every replica has acknowledged — mirroring HDFS's hflush semantics
that both LogBase and HBase depend on for durability (Guarantee 1).

Cost accounting: the writer's clock advances by its local disk write plus
one pipelined network transfer plus a replication acknowledgement latency;
each remote replica's machine clock advances by its own disk write.  With
every machine in the cluster simultaneously writing and receiving replica
streams, the cluster-wide makespan therefore reflects the 3x disk traffic
that n-way replication creates — the effect that bounds load throughput in
the paper's Figure 11.
"""

from __future__ import annotations

from repro.dfs.block import BlockInfo, FileMeta
from repro.dfs.block_cache import DEFAULT_CHUNK_SIZE, BlockCache
from repro.dfs.datanode import DataNode
from repro.dfs.namenode import NameNode
from repro.errors import (
    DataNodeDownError,
    DFSError,
    FileClosedError,
    FileNotFoundInDFS,
)
from repro.sim.machine import Machine
from repro.sim.network import NetworkModel

DEFAULT_BLOCK_SIZE = 64 * 1024 * 1024


class DFS:
    """The distributed file system shared by every server in the cluster.

    Args:
        machines: hosts to run one datanode on each.
        replication: synchronous replication factor (paper default: 3).
        block_size: maximum bytes per block (paper default: 64 MB).
        block_cache_bytes: per-machine block-cache capacity; 0 disables
            caching entirely (reads hit the datanodes directly, the seed
            cost model).
        block_cache_chunk: cache fill/eviction unit in bytes.
    """

    def __init__(
        self,
        machines: list[Machine],
        replication: int = 3,
        block_size: int = DEFAULT_BLOCK_SIZE,
        checksum_replicas: bool = False,
        block_cache_bytes: int = 0,
        block_cache_chunk: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if not machines:
            raise ValueError("a DFS needs at least one machine")
        self.block_size = block_size
        self.block_cache_bytes = block_cache_bytes
        self.block_cache_chunk = block_cache_chunk
        self._block_caches: dict[str, BlockCache] = {}
        self.network: NetworkModel = machines[0].network
        self.namenode = NameNode(replication=min(replication, len(machines)))
        self.datanodes: dict[str, DataNode] = {}
        for machine in machines:
            node = DataNode(machine, checksum_replicas=checksum_replicas)
            self.datanodes[node.name] = node
            self.namenode.register_datanode(node.name, machine.rack)

    def rereplicate(self) -> int:
        """Restore the replication factor of under-replicated blocks.

        Real HDFS does this continuously when datanodes die; here it is an
        explicit pass: for every block with fewer live replicas than the
        replication factor, a surviving replica is copied to a live
        datanode that lacks one.  Returns the number of new replicas
        created.

        Raises:
            DFSError: if a block has no live replica left (data loss).
        """
        created = 0
        alive = self._alive()
        for path in self.namenode.list_files():
            for block in self.namenode.get_file(path).blocks:
                live = [loc for loc in block.locations if loc in alive]
                if not live:
                    raise DFSError(
                        f"block {block.block_id} of {path} has no live replica"
                    )
                want = min(self.namenode.replication, len(alive))
                if len(live) >= want:
                    continue
                source = self.datanodes[live[0]]
                targets = [
                    name for name in alive
                    if name not in live and not self.datanodes[name].has_block(block.block_id)
                ]
                for target_name in targets[: want - len(live)]:
                    payload, _ = source.read_replica(
                        block.block_id, 0, source.block_length(block.block_id)
                    )
                    target = self.datanodes[target_name]
                    source.machine.send(target.machine, len(payload))
                    target.create_replica(block.block_id)
                    target.append_replica(block.block_id, payload)
                    block.locations.append(target_name)
                    live.append(target_name)
                    created += 1
        return created

    def add_machine(self, machine: Machine) -> DataNode:
        """Start a datanode on a newly provisioned machine (elastic
        scale-out: new blocks may be placed on it immediately)."""
        node = DataNode(machine)
        self.datanodes[node.name] = node
        self.namenode.register_datanode(node.name, machine.rack)
        return node

    # -- helpers -------------------------------------------------------------

    def _alive(self) -> set[str]:
        return {name for name, node in self.datanodes.items() if node.alive}

    def datanode(self, name: str) -> DataNode:
        """The datanode co-located on machine ``name``."""
        return self.datanodes[name]

    # -- block caches ---------------------------------------------------------

    def block_cache_for(self, machine: Machine) -> BlockCache | None:
        """``machine``'s block cache (created lazily), or None when block
        caching is disabled for this DFS."""
        if self.block_cache_bytes <= 0:
            return None
        cache = self._block_caches.get(machine.name)
        if cache is None:
            cache = BlockCache(
                self.block_cache_bytes,
                chunk_size=self.block_cache_chunk,
                counters=machine.counters,
            )
            self._block_caches[machine.name] = cache
        return cache

    def drop_block_caches(self) -> None:
        """Empty every machine's block cache (cold-read experiments)."""
        for cache in self._block_caches.values():
            cache.clear()

    def _invalidate_cached_tail(self, block_id: int, old_length: int) -> None:
        for cache in self._block_caches.values():
            cache.invalidate_tail(block_id, old_length)

    def _invalidate_cached_block(self, block_id: int) -> None:
        for cache in self._block_caches.values():
            cache.invalidate_block(block_id)

    # -- namespace operations -------------------------------------------------

    def create(self, path: str, writer: Machine) -> "DFSWriter":
        """Create ``path`` and return an append-only writer bound to
        ``writer`` (the machine doing the writing)."""
        self.namenode.create_file(path)
        return DFSWriter(self, path, writer)

    def open_for_append(self, path: str, writer: Machine) -> "DFSWriter":
        """Reopen an existing file for further appends."""
        self.namenode.get_file(path)
        return DFSWriter(self, path, writer)

    def open(self, path: str, reader: Machine) -> "DFSReader":
        """Open ``path`` for positional reads on behalf of ``reader``."""
        meta = self.namenode.get_file(path)
        return DFSReader(self, meta, reader)

    def exists(self, path: str) -> bool:
        """Whether ``path`` exists."""
        return self.namenode.exists(path)

    def delete(self, path: str) -> None:
        """Delete ``path`` and drop all of its replicas."""
        meta = self.namenode.delete_file(path)
        for block in meta.blocks:
            self._invalidate_cached_block(block.block_id)
            for location in block.locations:
                node = self.datanodes.get(location)
                if node is not None and node.alive:
                    node.drop_replica(block.block_id)

    def rename(self, src: str, dst: str) -> None:
        """Atomically rename ``src`` to ``dst``."""
        self.namenode.rename(src, dst)

    def list_files(self, prefix: str = "") -> list[str]:
        """Paths under ``prefix``, sorted."""
        return self.namenode.list_files(prefix)

    def file_length(self, path: str) -> int:
        """Length of ``path`` in bytes."""
        return self.namenode.get_file(path).length

    # -- replication internals -------------------------------------------------

    def _append_to_block(self, block: BlockInfo, data: bytes, writer: Machine) -> None:
        """Run the synchronous replication pipeline for one append."""
        # Only the partial chunk at the old tail can hold stale cached
        # bytes after this append; full chunks are immutable.
        self._invalidate_cached_tail(block.block_id, block.length)
        live = [
            self.datanodes[name]
            for name in block.locations
            if self.datanodes[name].alive
        ]
        if not live:
            raise DFSError(f"no live replica for block {block.block_id}")
        primary, *secondaries = live
        # The writer streams to the primary (loopback when co-located)...
        writer.send(primary.machine, len(data))
        primary.append_replica(block.block_id, data)
        # ...which pipelines once to the remaining replicas; remote disks pay
        # their own write cost on their own clocks.
        for replica in secondaries:
            primary.machine.counters.add("net.bytes_sent", len(data))
            replica.machine.clock.advance(self.network.transfer_cost(len(data)))
            replica.append_replica(block.block_id, data)
        # Synchronous ack travels back up the pipeline before return.
        writer.clock.advance(self.network.latency * len(secondaries))
        block.length += len(data)


class DFSWriter:
    """Append-only handle on a DFS file.

    Appends that overflow the current block allocate a new one; an append
    never spans a block boundary unless the payload itself is bigger than
    a block, in which case it is split.
    """

    def __init__(self, dfs: DFS, path: str, writer: Machine) -> None:
        self._dfs = dfs
        self._path = path
        self._writer = writer
        self._closed = False

    @property
    def path(self) -> str:
        """The file being written."""
        return self._path

    @property
    def length(self) -> int:
        """Current file length (== offset of the next append)."""
        return self._dfs.namenode.get_file(self._path).length

    def append(self, data: bytes) -> int:
        """Durably append ``data``; returns the starting file offset.

        The call returns only after every replica holds the bytes
        (synchronous replication).

        Raises:
            FileClosedError: if the writer has been closed.
        """
        if self._closed:
            raise FileClosedError(self._path)
        meta = self._dfs.namenode.get_file(self._path)
        start_offset = meta.length
        remaining = memoryview(data)
        while len(remaining) > 0:
            block = self._current_block(meta)
            room = self._dfs.block_size - block.length
            chunk = bytes(remaining[:room])
            remaining = remaining[room:] if room < len(remaining) else remaining[len(remaining):]
            self._dfs._append_to_block(block, chunk, self._writer)
        return start_offset

    def _current_block(self, meta: FileMeta) -> BlockInfo:
        if meta.blocks and meta.blocks[-1].length < self._dfs.block_size:
            return meta.blocks[-1]
        block = self._dfs.namenode.allocate_block(
            self._path, self._writer.name, self._dfs._alive()
        )
        for location in block.locations:
            self._dfs.datanodes[location].create_replica(block.block_id)
        return block

    def close(self) -> None:
        """Finalize the file; further appends raise."""
        self._closed = True
        self._dfs.namenode.get_file(self._path).closed = True


class DFSReader:
    """Positional reader over a DFS file.

    Reads prefer the replica co-located with the reader (HDFS short-circuit
    reads), then any replica on the reader's rack, then any live replica.
    """

    def __init__(self, dfs: DFS, meta: FileMeta, reader: Machine) -> None:
        self._dfs = dfs
        self._meta = meta
        self._reader = reader

    @property
    def length(self) -> int:
        """Current file length."""
        return self._meta.length

    @property
    def machine(self) -> Machine:
        """The machine this reader charges costs to."""
        return self._reader

    def refresh(self) -> None:
        """Re-fetch the file's metadata from the namenode.

        Lets a long-lived reader observe appends that happened after it
        was opened without re-opening the file (the log repository keeps
        one reader per segment across appends)."""
        self._meta = self._dfs.namenode.get_file(self._meta.path)

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting at file ``offset``.

        Raises:
            FileNotFoundInDFS: if the range is beyond the end of file.
        """
        if offset + length > self._meta.length:
            raise FileNotFoundInDFS(
                f"read past EOF of {self._meta.path}: "
                f"offset={offset} length={length} file={self._meta.length}"
            )
        out = bytearray()
        remaining = length
        pos = offset
        for block in self._meta.blocks:
            if remaining == 0:
                break
            if pos >= block.length:
                pos -= block.length
                continue
            take = min(block.length - pos, remaining)
            out.extend(self._read_from_block(block, pos, take))
            remaining -= take
            pos = 0
        return bytes(out)

    def read_all(self) -> bytes:
        """Read the whole file sequentially."""
        return self.read(0, self._meta.length)

    def _read_from_block(self, block: BlockInfo, offset: int, length: int) -> bytes:
        cache = self._dfs.block_cache_for(self._reader)
        if cache is not None:
            return self._read_through_cache(cache, block, offset, length)
        node = self._pick_replica(block)
        payload, cost = node.read_replica(block.block_id, offset, length)
        if node.machine is not self._reader:
            # Remote read: the reader waits for the remote disk + transfer.
            self._reader.clock.advance(
                cost + self._dfs.network.transfer_cost(length)
            )
            self._reader.counters.add("net.bytes_received", length)
        else:
            self._reader.clock.advance(self._dfs.network.local_latency)
        return payload

    def _read_through_cache(
        self, cache: "BlockCache", block: BlockInfo, offset: int, length: int
    ) -> bytes:
        """Serve the range chunk-by-chunk through the reader's block cache.

        A hit costs memory only (the per-call local latency below); a miss
        reads the *whole* chunk from a replica — one seek plus a
        chunk-sized transfer charged exactly as a direct read of that
        range would be — and installs it for later hits.
        """
        chunk_size = cache.chunk_size
        self._reader.clock.advance(self._dfs.network.local_latency)
        node = None
        parts: list[bytes] = []
        first = offset // chunk_size
        last = (offset + length - 1) // chunk_size
        for chunk_no in range(first, last + 1):
            chunk_start = chunk_no * chunk_size
            data = cache.get(block.block_id, chunk_no)
            if data is None:
                if node is None:
                    node = self._pick_replica(block)
                take = min(chunk_size, block.length - chunk_start)
                data, cost = node.read_replica(block.block_id, chunk_start, take)
                if node.machine is not self._reader:
                    self._reader.clock.advance(
                        cost + self._dfs.network.transfer_cost(take)
                    )
                    self._reader.counters.add("net.bytes_received", take)
                cache.put(block.block_id, chunk_no, data)
            lo = max(offset, chunk_start) - chunk_start
            hi = min(offset + length, chunk_start + len(data)) - chunk_start
            parts.append(data[lo:hi])
        return b"".join(parts)

    def _pick_replica(self, block: BlockInfo) -> DataNode:
        live = [
            self._dfs.datanodes[name]
            for name in block.locations
            if self._dfs.datanodes[name].alive
        ]
        if not live:
            raise DataNodeDownError(
                f"all replicas of block {block.block_id} are down"
            )
        for node in live:
            if node.machine is self._reader:
                return node
        for node in live:
            if node.machine.rack == self._reader.rack:
                return node
        return live[0]
