"""Block metadata kept by the namenode.

A DFS file is an ordered list of blocks; each block is replicated on a set
of datanodes.  Block payloads live on the datanodes; the namenode only
tracks locations and lengths, as in HDFS.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BlockInfo:
    """Metadata for one block of a DFS file.

    Attributes:
        block_id: globally unique block number.
        locations: names of datanodes holding a replica, pipeline order.
        length: bytes currently written into the block.
    """

    block_id: int
    locations: list[str] = field(default_factory=list)
    length: int = 0


@dataclass
class FileMeta:
    """Namenode metadata for one file.

    Attributes:
        path: absolute path of the file.
        blocks: ordered block list.
        closed: True once the writer finalized the file.
    """

    path: str
    blocks: list[BlockInfo] = field(default_factory=list)
    closed: bool = False

    @property
    def length(self) -> int:
        """Total file length in bytes."""
        return sum(block.length for block in self.blocks)
