"""Namenode: the DFS namespace and rack-aware block placement.

Placement follows the HDFS default policy the paper's cluster used:

1. first replica on the writer's local datanode (if alive),
2. second replica on a datanode in a *different* rack,
3. third replica on a different datanode in the *same* rack as the second,
4. further replicas spread over remaining datanodes.
"""

from __future__ import annotations

import itertools

from repro.dfs.block import BlockInfo, FileMeta
from repro.errors import (
    FileAlreadyExists,
    FileNotFoundInDFS,
    ReplicationError,
)


class NameNode:
    """Namespace and block-location manager for the simulated DFS."""

    def __init__(self, replication: int = 3, *, allow_degraded: bool = False) -> None:
        if replication < 1:
            raise ValueError("replication factor must be >= 1")
        self.replication = replication
        # Degraded allocation: when fewer datanodes are live than the
        # replication factor, place new blocks on the survivors and queue
        # them for repair instead of refusing the write (availability
        # during failures; off by default to keep the seed's strictness).
        self.allow_degraded = allow_degraded
        self._files: dict[str, FileMeta] = {}
        self._next_block_id = itertools.count(1)
        self._placement_rotor = itertools.count(0)
        # datanode name -> rack, registered by the DFS facade
        self._racks: dict[str, str] = {}
        # Block ids reported under-replicated by the append pipeline or the
        # read path; drained by heartbeat-driven re-replication.
        self.under_replicated: set[int] = set()

    # -- datanode membership -------------------------------------------------

    def register_datanode(self, name: str, rack: str) -> None:
        """Record a datanode and its rack for placement decisions."""
        self._racks[name] = rack

    def rack_of(self, name: str) -> str | None:
        """Rack of a registered datanode, or None if unknown."""
        return self._racks.get(name)

    def report_under_replicated(self, block_id: int) -> None:
        """Record that ``block_id`` has lost a replica (pipeline or read
        path detected a dead/corrupt copy); the heartbeat pass repairs it."""
        self.under_replicated.add(block_id)

    def clear_under_replicated(self, block_id: int) -> None:
        """Drop ``block_id`` from the repair queue (replica count restored
        or the block's file was deleted)."""
        self.under_replicated.discard(block_id)

    # -- namespace -----------------------------------------------------------

    def create_file(self, path: str) -> FileMeta:
        """Create an empty file entry.

        Raises:
            FileAlreadyExists: if ``path`` is already in the namespace.
        """
        if path in self._files:
            raise FileAlreadyExists(path)
        meta = FileMeta(path=path)
        self._files[path] = meta
        return meta

    def get_file(self, path: str) -> FileMeta:
        """Look up file metadata.

        Raises:
            FileNotFoundInDFS: if ``path`` does not exist.
        """
        meta = self._files.get(path)
        if meta is None:
            raise FileNotFoundInDFS(path)
        return meta

    def exists(self, path: str) -> bool:
        """Whether ``path`` is in the namespace."""
        return path in self._files

    def delete_file(self, path: str) -> FileMeta:
        """Remove ``path`` and return its metadata (caller drops replicas)."""
        meta = self.get_file(path)
        del self._files[path]
        return meta

    def rename(self, src: str, dst: str) -> None:
        """Atomically rename ``src`` to ``dst``."""
        if dst in self._files:
            raise FileAlreadyExists(dst)
        meta = self.get_file(src)
        del self._files[src]
        meta.path = dst
        self._files[dst] = meta

    def list_files(self, prefix: str = "") -> list[str]:
        """All paths starting with ``prefix``, sorted."""
        return sorted(path for path in self._files if path.startswith(prefix))

    # -- block allocation ----------------------------------------------------

    def allocate_block(self, path: str, writer: str, alive: set[str]) -> BlockInfo:
        """Allocate a new block for ``path`` with rack-aware placement.

        Args:
            path: target file.
            writer: machine name of the writing client.
            alive: names of currently live datanodes.

        Raises:
            ReplicationError: if fewer live datanodes exist than the
                replication factor (unless degraded allocation is on).
        """
        meta = self.get_file(path)
        locations = self._place(writer, alive)
        block = BlockInfo(block_id=next(self._next_block_id), locations=locations)
        meta.blocks.append(block)
        if len(locations) < self.replication:
            self.report_under_replicated(block.block_id)
        return block

    def _place(self, writer: str, alive: set[str]) -> list[str]:
        candidates = [name for name in self._racks if name in alive]
        want = self.replication
        if len(candidates) < want:
            if not self.allow_degraded or not candidates:
                raise ReplicationError(
                    f"need {self.replication} live datanodes, have {len(candidates)}"
                )
            want = len(candidates)
        # Deterministic spread: rotate remote-replica choice per block so
        # no single node absorbs every second replica (HDFS randomizes;
        # a fixed choice would create the hotspot randomization avoids).
        salt = next(self._placement_rotor)
        chosen: list[str] = []
        # 1. local replica
        if writer in alive and writer in self._racks:
            chosen.append(writer)
        else:
            chosen.append(candidates[salt % len(candidates)])
        first_rack = self._racks[chosen[0]]
        # 2. different rack if one exists
        remote = [n for n in candidates if n not in chosen and self._racks[n] != first_rack]
        if remote and len(chosen) < want:
            chosen.append(remote[salt % len(remote)])
        # 3. same rack as the second replica, different node
        if len(chosen) >= 2 and len(chosen) < want:
            second_rack = self._racks[chosen[1]]
            peers = [
                n
                for n in candidates
                if n not in chosen and self._racks[n] == second_rack
            ]
            if peers:
                chosen.append(peers[salt % len(peers)])
        # 4. fill remaining slots round-robin
        for offset in range(len(candidates)):
            if len(chosen) == want:
                break
            name = candidates[(salt + offset) % len(candidates)]
            if name not in chosen:
                chosen.append(name)
        return chosen
