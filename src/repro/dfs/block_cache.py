"""Per-machine block cache for DFS reads.

Every machine that reads from the DFS may keep an LRU cache of
chunk-aligned slices of blocks — the role the OS page cache and HDFS
short-circuit read caching play under a real tablet server.  The cache sits
between :class:`~repro.dfs.filesystem.DFSReader` and the datanodes: a hit
is served from memory (no disk access, no seek), a miss reads one whole
chunk from a replica (one seek + chunk transfer) and installs it, so
repeated random reads over a warm working set stop paying the §3.5 "single
disk seek" per record that dominates Figures 8 and 10.

Chunks are immutable once cached: DFS files are append-only, so a full
chunk can never change.  Only the *partial* chunk at the tail of the block
being appended to is volatile — the write path invalidates exactly that
chunk (see ``DFS._append_to_block``), which keeps the rest of the active
segment warm across appends.
"""

from __future__ import annotations

from repro.sim.metrics import (
    BLOCK_CACHE_EVICTIONS,
    BLOCK_CACHE_FILL_BYTES,
    BLOCK_CACHE_HITS,
    BLOCK_CACHE_MISSES,
    Counters,
)
from repro.util.lru import LRUCache

DEFAULT_CHUNK_SIZE = 64 * 1024


class BlockCache:
    """LRU cache of ``(block_id, chunk_no) -> bytes`` chunk payloads.

    Args:
        capacity_bytes: total bytes of chunk payload retained.
        chunk_size: bytes per chunk (the fill/eviction unit).
        counters: the owning machine's counter bag; hit/miss/eviction
            counts are recorded there so :mod:`repro.core.stats` can
            surface them per server.
    """

    def __init__(
        self,
        capacity_bytes: int,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        counters: Counters | None = None,
    ) -> None:
        if capacity_bytes < 1:
            raise ValueError("capacity_bytes must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = chunk_size
        self.counters = counters if counters is not None else Counters()
        self._cache: LRUCache[tuple[int, int], bytes] = LRUCache(
            byte_capacity=capacity_bytes, sizer=len
        )

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def bytes_used(self) -> int:
        """Total bytes of cached chunk payload."""
        return self._cache.bytes_used

    @property
    def hits(self) -> int:
        """Lifetime hit count."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Lifetime miss count."""
        return self._cache.misses

    @property
    def evictions(self) -> int:
        """Lifetime eviction count."""
        return self._cache.evictions

    def get(self, block_id: int, chunk_no: int) -> bytes | None:
        """The cached chunk, or None; records a hit/miss counter."""
        data = self._cache.get((block_id, chunk_no))
        self.counters.add(BLOCK_CACHE_HITS if data is not None else BLOCK_CACHE_MISSES)
        return data

    def put(self, block_id: int, chunk_no: int, data: bytes) -> None:
        """Install a chunk just read from a datanode."""
        before = self._cache.evictions
        self._cache.put((block_id, chunk_no), data)
        self.counters.add(BLOCK_CACHE_FILL_BYTES, len(data))
        evicted = self._cache.evictions - before
        if evicted:
            self.counters.add(BLOCK_CACHE_EVICTIONS, evicted)

    def contains(self, block_id: int, chunk_no: int) -> bool:
        """Whether the chunk is cached (no counter side effects)."""
        return self._cache.peek((block_id, chunk_no)) is not None

    def invalidate_tail(self, block_id: int, block_length: int) -> None:
        """Drop the partial chunk covering byte ``block_length`` of
        ``block_id`` — called by the write path before an append extends
        the block, since only that chunk's cached copy can go stale."""
        self._cache.remove((block_id, block_length // self.chunk_size))

    def invalidate_block(self, block_id: int) -> None:
        """Drop every cached chunk of ``block_id`` (block deleted, e.g.
        compaction retired its segment)."""
        for key in [key for key in self._cache if key[0] == block_id]:
            self._cache.remove(key)

    def cached_chunks(self, block_id: int) -> list[int]:
        """Chunk numbers of ``block_id`` currently cached (tests and
        diagnostics)."""
        return sorted(chunk_no for bid, chunk_no in self._cache if bid == block_id)

    def clear(self) -> None:
        """Drop everything (cold-read experiments); counters persist."""
        self._cache.clear()
