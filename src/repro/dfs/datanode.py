"""Datanode: stores replica payloads on a machine's simulated disk.

Each replica is held as a bytearray (the simulation's "disk contents")
while read/write *costs* are charged through the machine's
:class:`~repro.sim.disk.SimDisk`, keyed by block id so that sequential
appends to the same block are charged sequential-transfer cost and reads
elsewhere pay seeks.
"""

from __future__ import annotations

from repro.errors import BlockCorruptionError, DataNodeDownError
from repro.sim.machine import Machine
from repro.util.crc import crc32c


class DataNode:
    """One datanode process, co-located on a :class:`Machine`.

    Args:
        machine: the hosting machine.
        checksum_replicas: maintain incremental CRC-32C over every
            replica (verification tests enable this; benchmarks leave it
            off since log records carry their own checksums).
    """

    def __init__(self, machine: Machine, checksum_replicas: bool = False) -> None:
        self.machine = machine
        self.checksum_replicas = checksum_replicas
        self._blocks: dict[int, bytearray] = {}
        self._checksums: dict[int, int] = {}

    @property
    def name(self) -> str:
        """The hosting machine's name (datanodes are addressed by host)."""
        return self.machine.name

    @property
    def alive(self) -> bool:
        """Whether the hosting machine is up."""
        return self.machine.alive

    def fail(self) -> None:
        """Crash the hosting machine."""
        self.machine.fail()

    def _require_alive(self) -> None:
        if not self.alive:
            raise DataNodeDownError(f"datanode {self.name} is down")

    def has_block(self, block_id: int) -> bool:
        """Whether this datanode holds a replica of ``block_id``."""
        return block_id in self._blocks

    def block_length(self, block_id: int) -> int:
        """Current length of the local replica."""
        return len(self._blocks[block_id])

    def create_replica(self, block_id: int) -> None:
        """Allocate an empty replica for a new block."""
        self._require_alive()
        self._blocks[block_id] = bytearray()
        self._checksums[block_id] = 0

    def append_replica(self, block_id: int, data: bytes) -> float:
        """Append ``data`` to the local replica, charging disk cost.

        Returns:
            Seconds of disk time charged to the hosting machine.
        """
        self._require_alive()
        replica = self._blocks[block_id]
        cost = self.machine.disk.write_buffered(len(data))
        replica.extend(data)
        if self.checksum_replicas:
            self._checksums[block_id] = crc32c(data, self._checksums[block_id])
        return cost

    def read_cost(self, length: int) -> float:
        """Estimated disk cost of serving a ``length``-byte replica read,
        without charging anything.  Reflects the disk's current slowdown,
        so hedging and deadline enforcement can see a limping node before
        committing to it.  Conservative: assumes a random access."""
        return self.machine.disk.peek_cost(length)

    def read_replica(self, block_id: int, offset: int, length: int) -> tuple[bytes, float]:
        """Read ``length`` bytes of the replica at ``offset``.

        Returns:
            ``(payload, seconds_charged)``.

        Raises:
            DataNodeDownError: if the machine is down.
            BlockCorruptionError: if the read range exceeds the replica.
        """
        self._require_alive()
        replica = self._blocks[block_id]
        if offset + length > len(replica):
            raise BlockCorruptionError(
                f"read past end of block {block_id}: "
                f"offset={offset} length={length} have={len(replica)}"
            )
        cost = self.machine.disk.read(block_id, offset, length)
        return bytes(replica[offset : offset + length]), cost

    def verify_replica(self, block_id: int) -> bool:
        """Re-checksum the full replica against the running checksum.

        Always returns True when ``checksum_replicas`` is off (nothing to
        verify against)."""
        self._require_alive()
        replica = self._blocks.get(block_id)
        if replica is None:
            return False
        if not self.checksum_replicas:
            return True
        return crc32c(bytes(replica)) == self._checksums[block_id]

    def corrupt_replica(self, block_id: int, at: int = 0) -> None:
        """Flip one payload byte *without* updating the running checksum —
        fault injection for read-path corruption tests.  The damage is only
        detectable when ``checksum_replicas`` is on and a reader verifies.

        Raises:
            KeyError: if this datanode holds no such replica.
        """
        replica = self._blocks[block_id]
        if not replica:
            raise ValueError(f"replica of block {block_id} is empty")
        replica[at % len(replica)] ^= 0xFF

    def drop_replica(self, block_id: int) -> None:
        """Delete the local replica (file deletion / re-replication)."""
        self._blocks.pop(block_id, None)
        self._checksums.pop(block_id, None)
