"""Deterministic device simulation: clocks, disk and network cost models.

The paper's evaluation runs on physical disks and a gigabit network.  This
package replaces those devices with deterministic cost models so that the
I/O *shape* of each experiment (sequential vs. random access, single vs.
double writes, replication fan-out) is reproduced exactly and repeatably.
Every node in the simulated cluster owns a :class:`SimClock`; device
operations charge simulated seconds to it.
"""

from repro.sim.clock import SimClock
from repro.sim.disk import DiskModel, SimDisk
from repro.sim.network import NetworkModel
from repro.sim.metrics import Counters
from repro.sim.failure import FailureInjector

__all__ = [
    "SimClock",
    "DiskModel",
    "SimDisk",
    "NetworkModel",
    "Counters",
    "FailureInjector",
]
