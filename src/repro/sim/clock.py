"""Per-node simulated clocks.

Each simulated machine (datanode, tablet server, client) owns a clock.
Device models charge costs to the clock of the node performing the work.
Cluster-level experiment duration is the *makespan*: the maximum clock
value across the nodes that participated, since real nodes work in
parallel.
"""

from __future__ import annotations

from typing import Callable

# Optional process-wide hook called as ``observer(clock, seconds)`` after
# every positive advance.  The tracer (repro.obs.trace) uses it to credit
# charged time to the innermost open span; with no observer installed the
# cost is one ``is None`` check per advance.
_OBSERVER: "Callable[[SimClock, float], None] | None" = None


def set_clock_observer(observer: "Callable[[SimClock, float], None] | None") -> None:
    """Install (or clear, with None) the process-wide advance observer."""
    global _OBSERVER
    _OBSERVER = observer


class SimClock:
    """Monotonically advancing simulated time, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        self._now += seconds
        if _OBSERVER is not None and seconds:
            _OBSERVER(self, seconds)

    def advance_to(self, deadline: float) -> None:
        """Move time forward to ``deadline`` if it is in the future."""
        if deadline > self._now:
            delta = deadline - self._now
            self._now = deadline
            if _OBSERVER is not None:
                _OBSERVER(self, delta)

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock (used between benchmark phases)."""
        self._now = float(start)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"


def makespan(clocks: list[SimClock]) -> float:
    """Duration of a parallel phase: the max time across participating nodes."""
    if not clocks:
        return 0.0
    return max(clock.now for clock in clocks)
