"""Disk cost model and a stateful simulated disk.

The model follows the classic mechanical-disk decomposition the paper's
argument rests on: a random access pays a seek plus half a rotation, while
a sequential access pays only transfer time.  The defaults approximate the
commodity 7200 rpm disks of the paper's cluster (circa 2012): 8 ms average
seek, 4.17 ms average rotational latency, 100 MB/s sequential bandwidth.

:class:`SimDisk` additionally tracks the head position (as an opaque
``(file_id, offset)`` pair) so that sequential-vs-random classification is
*emergent* from the access pattern rather than declared by callers: a read
or write that continues where the previous operation on the same file left
off is sequential; anything else pays a seek.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import SimClock
from repro.sim.metrics import Counters


@dataclass(frozen=True)
class DiskModel:
    """Cost parameters for one disk.

    Attributes:
        seek_time: average seek time in seconds.
        rotational_latency: average rotational delay in seconds.
        bandwidth: sequential transfer rate in bytes/second.
    """

    seek_time: float = 0.008
    rotational_latency: float = 0.00417
    bandwidth: float = 100e6

    def random_access_cost(self, nbytes: int) -> float:
        """Seconds for a random read/write of ``nbytes``."""
        return self.seek_time + self.rotational_latency + nbytes / self.bandwidth

    def sequential_cost(self, nbytes: int) -> float:
        """Seconds for a sequential read/write of ``nbytes``."""
        return nbytes / self.bandwidth


class SimDisk:
    """A disk with a head position, charging time to a :class:`SimClock`.

    Args:
        clock: the owning node's clock to charge.
        model: cost parameters.
        counters: optional shared counter bag; a private one is created
            otherwise.
    """

    def __init__(
        self,
        clock: SimClock,
        model: DiskModel | None = None,
        counters: Counters | None = None,
    ) -> None:
        self.clock = clock
        self.model = model if model is not None else DiskModel()
        self.counters = counters if counters is not None else Counters()
        # Head position: (file_id, byte offset just past the last access).
        self._head: tuple[int, int] | None = None
        # Degraded-mode multiplier (fault injection); 1.0 = healthy.
        self._slowdown = 1.0

    def set_slowdown(self, factor: float) -> None:
        """Degrade (or restore) the disk: every access costs ``factor`` times
        the healthy model.  Used by fault injection to model a failing or
        contended disk without killing the node.
        """
        if factor <= 0:
            raise ValueError("slowdown factor must be positive")
        self._slowdown = factor

    @property
    def slowdown(self) -> float:
        """Current degraded-mode multiplier (1.0 = healthy)."""
        return self._slowdown

    def peek_cost(self, nbytes: int, *, sequential: bool = False) -> float:
        """Estimate the cost of an access *without* charging the clock or
        moving the head.  Deadline enforcement and hedging compare this
        estimate across replicas before committing to a read; it reflects
        the current slowdown, so a limping disk is visible up front.

        The default assumes a random access (the conservative case for a
        reader that does not know the head position of a remote disk).
        """
        if sequential:
            cost = self.model.sequential_cost(nbytes)
        else:
            cost = self.model.random_access_cost(nbytes)
        return cost * self._slowdown

    def _charge(self, file_id: int, offset: int, nbytes: int, write: bool) -> float:
        sequential = self._head == (file_id, offset)
        if sequential:
            cost = self.model.sequential_cost(nbytes)
        else:
            cost = self.model.random_access_cost(nbytes)
            self.counters.add("disk.seeks")
        cost *= self._slowdown
        self._head = (file_id, offset + nbytes)
        self.clock.advance(cost)
        if write:
            self.counters.add("disk.bytes_written", nbytes)
            self.counters.add("disk.writes")
        else:
            self.counters.add("disk.bytes_read", nbytes)
            self.counters.add("disk.reads")
        return cost

    def read(self, file_id: int, offset: int, nbytes: int) -> float:
        """Charge a read at ``(file_id, offset)``; returns seconds charged."""
        return self._charge(file_id, offset, nbytes, write=False)

    def write(self, file_id: int, offset: int, nbytes: int) -> float:
        """Charge a write at ``(file_id, offset)``; returns seconds charged."""
        return self._charge(file_id, offset, nbytes, write=True)

    def write_buffered(self, nbytes: int) -> float:
        """Charge an append absorbed by the OS page cache and written back
        sequentially: transfer cost only, no seek, and the read head
        position is unaffected.  This is how HDFS datanodes persist block
        appends, and why log appends stay cheap even when reads interleave
        (the paper's sub-millisecond update latencies, Figure 13)."""
        cost = self.model.sequential_cost(nbytes) * self._slowdown
        self.clock.advance(cost)
        self.counters.add("disk.bytes_written", nbytes)
        self.counters.add("disk.writes")
        return cost

    def invalidate_head(self) -> None:
        """Force the next access to pay a seek (e.g. after another process
        used the disk)."""
        self._head = None
