"""Deadline propagation across simulated clock domains.

A :class:`Deadline` is a time *budget* rather than an absolute wall-clock
instant: the cluster's per-machine :class:`~repro.sim.clock.SimClock`\\ s
are unsynchronized, so "expires at t=1.5" means nothing across machines.
Instead the deadline anchors its remaining budget to one clock at a time;
:meth:`rebase` transfers whatever budget is left onto another machine's
clock as a request hops client → tablet server → DFS reader.

Propagation through deep call stacks uses the same ambient-global pattern
as :mod:`repro.sim.failure`'s fault plans: the client arms its deadline
with :func:`deadline_scope`, and instrumented code (log repository reads,
DFS replica reads, tablet-server entry points) polls
:func:`check_deadline` — a no-op costing one ``is None`` check unless a
deadline is active, so the gated-off benchmarks are unaffected.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.errors import DeadlineExceededError
from repro.sim.clock import SimClock


class Deadline:
    """A propagatable time budget anchored to one simulated clock.

    Args:
        clock: the clock the budget is initially anchored to.
        budget: simulated seconds until expiry, measured on ``clock``.
    """

    __slots__ = ("_clock", "_anchor", "_budget")

    def __init__(self, clock: SimClock, budget: float) -> None:
        if budget < 0:
            raise ValueError("deadline budget must be >= 0")
        self._clock = clock
        self._anchor = clock.now
        self._budget = budget

    @classmethod
    def after(cls, clock: SimClock, seconds: float) -> "Deadline":
        """A deadline expiring ``seconds`` from now on ``clock``."""
        return cls(clock, seconds)

    def remaining(self) -> float:
        """Budget left in simulated seconds (may be negative once blown)."""
        return self._budget - (self._clock.now - self._anchor)

    @property
    def expired(self) -> bool:
        """Whether the budget has been used up."""
        return self.remaining() <= 0

    def rebase(self, clock: SimClock) -> "Deadline":
        """Move the remaining budget onto ``clock`` (RPC hop).

        Time already consumed on the old clock stays consumed; from here
        on, consumption is measured on the new clock.  Returns self for
        chaining.
        """
        self._budget = self.remaining()
        self._clock = clock
        self._anchor = clock.now
        return self

    def check(self, label: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is gone."""
        if self.expired:
            raise DeadlineExceededError(
                f"{label} exceeded its deadline "
                f"(over budget by {-self.remaining():.6f}s)"
            )

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.6f}s)"


_ACTIVE_DEADLINE: Deadline | None = None


def current_deadline() -> Deadline | None:
    """The ambient deadline armed by :func:`deadline_scope`, if any."""
    return _ACTIVE_DEADLINE


def check_deadline(label: str = "operation") -> None:
    """Hook for instrumented code: enforce the ambient deadline.

    A no-op (one global ``is None`` check) unless a scope is active.
    """
    if _ACTIVE_DEADLINE is not None:
        _ACTIVE_DEADLINE.check(label)


@contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[Deadline | None]:
    """Arm ``deadline`` as the ambient deadline for the ``with`` block.

    ``None`` is accepted and leaves the ambient state untouched, so
    call sites can pass their optional deadline through unconditionally.
    """
    global _ACTIVE_DEADLINE
    if deadline is None:
        yield None
        return
    previous = _ACTIVE_DEADLINE
    _ACTIVE_DEADLINE = deadline
    try:
        yield deadline
    finally:
        _ACTIVE_DEADLINE = previous
