"""Network cost model for the simulated cluster.

Defaults approximate the paper's 1 gigabit Ethernet: 125 MB/s of bandwidth
and 200 microseconds of per-message latency.  Transfers between two
processes on the *same* node (e.g. a tablet server writing to the datanode
co-located with it, which is how both HBase and LogBase deploy) are charged
only local loopback latency.

The model also carries the cluster's *partition state*: fault-injection
splits machines into connectivity groups and every cost-charging transfer
point (machine sends, the DFS replication pipeline, client RPCs) consults
:meth:`NetworkModel.reachable` before moving bytes.  With no partition
active — the default — every pair is reachable and nothing changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class PartitionState:
    """Mutable connectivity state shared by every machine on one network.

    A partition is a set of named groups; two machines can talk iff they
    are in the same group.  Machines not named in any group form one
    implicit group of their own (they can talk to each other but to no
    partitioned group).  ``heal()`` restores full connectivity.
    """

    def __init__(self) -> None:
        self._group_of: dict[str, int] | None = None

    @property
    def active(self) -> bool:
        """Whether any partition is currently in force."""
        return self._group_of is not None

    def partition(self, *groups: list[str] | tuple[str, ...] | set[str]) -> None:
        """Split the network: machines in different groups cannot talk."""
        mapping: dict[str, int] = {}
        for group_no, names in enumerate(groups):
            for name in names:
                mapping[name] = group_no
        self._group_of = mapping

    def isolate(self, name: str) -> None:
        """Cut one machine off from everybody else."""
        self.partition([name])

    def heal(self) -> None:
        """Restore full connectivity."""
        self._group_of = None

    def reachable(self, a: str, b: str) -> bool:
        """Whether machine ``a`` can currently reach machine ``b``."""
        if self._group_of is None or a == b:
            return True
        # Unnamed machines share the implicit group -1.
        return self._group_of.get(a, -1) == self._group_of.get(b, -1)


class LinkHealth:
    """Mutable per-link slowdown state shared by every machine on one
    network (gray-failure injection).

    A *limping link* multiplies the cost of every transfer between two
    named endpoints without cutting connectivity — the gray counterpart
    of :class:`PartitionState`'s hard cut.  Links are symmetric.  With no
    slow links — the default — every cost-charging call takes one
    ``is None`` fast path and charges exactly the healthy model.
    """

    def __init__(self) -> None:
        self._factors: dict[frozenset[str], float] | None = None

    @property
    def active(self) -> bool:
        """Whether any link is currently degraded."""
        return self._factors is not None

    def slow(self, a: str, b: str, factor: float) -> None:
        """Degrade the ``a``↔``b`` link: transfers cost ``factor`` times
        the healthy model.  ``factor=1.0`` heals the link."""
        if factor <= 0:
            raise ValueError("link slowdown factor must be positive")
        key = frozenset((a, b))
        if factor == 1.0:
            if self._factors is not None:
                self._factors.pop(key, None)
                if not self._factors:
                    self._factors = None
            return
        if self._factors is None:
            self._factors = {}
        self._factors[key] = factor

    def heal(self) -> None:
        """Restore every link to full health."""
        self._factors = None

    def factor(self, a: str | None, b: str | None) -> float:
        """Current slowdown multiplier for the ``a``↔``b`` link."""
        if self._factors is None or a is None or b is None:
            return 1.0
        return self._factors.get(frozenset((a, b)), 1.0)


@dataclass(frozen=True)
class NetworkModel:
    """Cost parameters for the cluster interconnect.

    Attributes:
        latency: one-way message latency in seconds.
        bandwidth: link bandwidth in bytes/second.
        local_latency: latency for same-node loopback messages.
        partitions: shared mutable partition state (fault injection).
        links: shared mutable per-link slowdown state (gray failures).
    """

    latency: float = 0.0002
    bandwidth: float = 125e6
    local_latency: float = 0.00002
    partitions: PartitionState = field(
        default_factory=PartitionState, compare=False, repr=False
    )
    links: LinkHealth = field(
        default_factory=LinkHealth, compare=False, repr=False
    )

    def reachable(self, a: str, b: str) -> bool:
        """Whether machine ``a`` can currently reach machine ``b``."""
        return self.partitions.reachable(a, b)

    def transfer_cost(
        self,
        nbytes: int,
        *,
        local: bool = False,
        a: str | None = None,
        b: str | None = None,
    ) -> float:
        """Seconds to move ``nbytes`` in one message.

        When the sending and receiving machine names are given, an active
        link slowdown between them multiplies the cost; with no slow
        links (the default) the endpoints are ignored entirely.
        """
        lat = self.local_latency if local else self.latency
        if local:
            return lat  # loopback copies are effectively memory-speed
        cost = lat + nbytes / self.bandwidth
        factor = self.links.factor(a, b)
        if factor != 1.0:
            cost *= factor
        return cost

    def rpc_cost(
        self,
        request_bytes: int,
        response_bytes: int,
        *,
        local: bool = False,
        a: str | None = None,
        b: str | None = None,
    ) -> float:
        """Seconds for a request/response round trip."""
        return self.transfer_cost(
            request_bytes, local=local, a=a, b=b
        ) + self.transfer_cost(response_bytes, local=local, a=a, b=b)
