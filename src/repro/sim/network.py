"""Network cost model for the simulated cluster.

Defaults approximate the paper's 1 gigabit Ethernet: 125 MB/s of bandwidth
and 200 microseconds of per-message latency.  Transfers between two
processes on the *same* node (e.g. a tablet server writing to the datanode
co-located with it, which is how both HBase and LogBase deploy) are charged
only local loopback latency.

The model also carries the cluster's *partition state*: fault-injection
splits machines into connectivity groups and every cost-charging transfer
point (machine sends, the DFS replication pipeline, client RPCs) consults
:meth:`NetworkModel.reachable` before moving bytes.  With no partition
active — the default — every pair is reachable and nothing changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class PartitionState:
    """Mutable connectivity state shared by every machine on one network.

    A partition is a set of named groups; two machines can talk iff they
    are in the same group.  Machines not named in any group form one
    implicit group of their own (they can talk to each other but to no
    partitioned group).  ``heal()`` restores full connectivity.
    """

    def __init__(self) -> None:
        self._group_of: dict[str, int] | None = None

    @property
    def active(self) -> bool:
        """Whether any partition is currently in force."""
        return self._group_of is not None

    def partition(self, *groups: list[str] | tuple[str, ...] | set[str]) -> None:
        """Split the network: machines in different groups cannot talk."""
        mapping: dict[str, int] = {}
        for group_no, names in enumerate(groups):
            for name in names:
                mapping[name] = group_no
        self._group_of = mapping

    def isolate(self, name: str) -> None:
        """Cut one machine off from everybody else."""
        self.partition([name])

    def heal(self) -> None:
        """Restore full connectivity."""
        self._group_of = None

    def reachable(self, a: str, b: str) -> bool:
        """Whether machine ``a`` can currently reach machine ``b``."""
        if self._group_of is None or a == b:
            return True
        # Unnamed machines share the implicit group -1.
        return self._group_of.get(a, -1) == self._group_of.get(b, -1)


@dataclass(frozen=True)
class NetworkModel:
    """Cost parameters for the cluster interconnect.

    Attributes:
        latency: one-way message latency in seconds.
        bandwidth: link bandwidth in bytes/second.
        local_latency: latency for same-node loopback messages.
        partitions: shared mutable partition state (fault injection).
    """

    latency: float = 0.0002
    bandwidth: float = 125e6
    local_latency: float = 0.00002
    partitions: PartitionState = field(
        default_factory=PartitionState, compare=False, repr=False
    )

    def reachable(self, a: str, b: str) -> bool:
        """Whether machine ``a`` can currently reach machine ``b``."""
        return self.partitions.reachable(a, b)

    def transfer_cost(self, nbytes: int, *, local: bool = False) -> float:
        """Seconds to move ``nbytes`` in one message."""
        lat = self.local_latency if local else self.latency
        if local:
            return lat  # loopback copies are effectively memory-speed
        return lat + nbytes / self.bandwidth

    def rpc_cost(self, request_bytes: int, response_bytes: int, *, local: bool = False) -> float:
        """Seconds for a request/response round trip."""
        return self.transfer_cost(request_bytes, local=local) + self.transfer_cost(
            response_bytes, local=local
        )
