"""Network cost model for the simulated cluster.

Defaults approximate the paper's 1 gigabit Ethernet: 125 MB/s of bandwidth
and 200 microseconds of per-message latency.  Transfers between two
processes on the *same* node (e.g. a tablet server writing to the datanode
co-located with it, which is how both HBase and LogBase deploy) are charged
only local loopback latency.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """Cost parameters for the cluster interconnect.

    Attributes:
        latency: one-way message latency in seconds.
        bandwidth: link bandwidth in bytes/second.
        local_latency: latency for same-node loopback messages.
    """

    latency: float = 0.0002
    bandwidth: float = 125e6
    local_latency: float = 0.00002

    def transfer_cost(self, nbytes: int, *, local: bool = False) -> float:
        """Seconds to move ``nbytes`` in one message."""
        lat = self.local_latency if local else self.latency
        if local:
            return lat  # loopback copies are effectively memory-speed
        return lat + nbytes / self.bandwidth

    def rpc_cost(self, request_bytes: int, response_bytes: int, *, local: bool = False) -> float:
        """Seconds for a request/response round trip."""
        return self.transfer_cost(request_bytes, local=local) + self.transfer_cost(
            response_bytes, local=local
        )
