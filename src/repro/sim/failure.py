"""Failure injection for simulated nodes.

Anything with an ``alive`` attribute and a ``fail()`` method can register
with an injector; tests and the recovery benchmarks use it to kill nodes
deterministically at chosen points.
"""

from __future__ import annotations

from typing import Protocol


class Failable(Protocol):
    """Minimal interface a node must expose to be failure-injectable."""

    alive: bool

    def fail(self) -> None:
        """Transition the node to the failed state."""


class FailureInjector:
    """Registry of failable nodes with kill/restore bookkeeping."""

    def __init__(self) -> None:
        self._nodes: dict[str, Failable] = {}
        self.killed: list[str] = []

    def register(self, name: str, node: Failable) -> None:
        """Track ``node`` under ``name`` for later failure injection."""
        self._nodes[name] = node

    def kill(self, name: str) -> None:
        """Fail the named node.

        Raises:
            KeyError: if no node with that name is registered.
        """
        node = self._nodes[name]
        node.fail()
        self.killed.append(name)

    def alive_nodes(self) -> list[str]:
        """Names of registered nodes that are still alive."""
        return [name for name, node in self._nodes.items() if node.alive]
