"""Failure injection for simulated nodes.

Anything with an ``alive`` attribute and a ``fail()`` method can register
with an injector; tests and the recovery benchmarks use it to kill nodes
deterministically at chosen points.

Beyond whole-node kills the injector supports ``revive()`` (restart
bookkeeping for kill -> revive -> kill cycles) and ``degrade()`` (slow-disk
mode for nodes whose registered object exposes a ``disk``).

Deterministic *crash schedules* are expressed as a :class:`FaultPlan`: a
list of :class:`FaultRule` objects keyed by named crash points.
Instrumented code calls :func:`crash_point` at interesting moments (log
append, transaction commit, checkpoint, compaction); when no plan is
active — the default, and the only state the benchmarks ever see — the
call is a no-op costing one global ``is None`` check.  Activating a plan
with the :func:`fault_plan` context manager arms the rules: each rule
counts matching hits and fires its action (typically killing a node and
raising) on the Nth one, which is how "kill server X on its 3rd append"
or "crash at commit" schedules are built.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Protocol


class Failable(Protocol):
    """Minimal interface a node must expose to be failure-injectable."""

    alive: bool

    def fail(self) -> None:
        """Transition the node to the failed state."""


# Process-wide fault observer (same latest-wins install pattern as the
# tracer in repro.obs.trace): when set, every injected kill, every
# degradation, and every fault-plan rule that fires is reported to it as
# ``observer(kind, detail)``.  The monitoring plane's flight recorder
# hooks in here to stamp fault times and snapshot post-mortems; with no
# observer installed the cost is one ``is None`` check.
_FAULT_OBSERVER: Callable[[str, dict[str, Any]], None] | None = None


def set_fault_observer(observer: Callable[[str, dict[str, Any]], None]) -> None:
    """Install ``observer`` as the process-wide fault observer."""
    global _FAULT_OBSERVER
    _FAULT_OBSERVER = observer


def clear_fault_observer(
    observer: Callable[[str, dict[str, Any]], None] | None = None,
) -> None:
    """Remove the installed fault observer.

    Passing an observer clears only if it is still the installed one, so
    tearing down an old cluster cannot unhook a newer cluster's monitor.
    """
    global _FAULT_OBSERVER
    if observer is not None and _FAULT_OBSERVER is not observer:
        return
    _FAULT_OBSERVER = None


def _notify_fault(kind: str, detail: dict[str, Any]) -> None:
    observer = _FAULT_OBSERVER
    if observer is not None:
        observer(kind, detail)


class FailureInjector:
    """Registry of failable nodes with kill/revive/degrade bookkeeping.

    ``killed`` lists the nodes that are *currently* down: ``kill`` appends,
    ``revive`` removes, so a kill -> revive -> kill cycle leaves exactly one
    entry.  ``kill_history`` is append-only and records every kill ever
    issued, in order.
    """

    def __init__(self) -> None:
        self._nodes: dict[str, Failable] = {}
        self.killed: list[str] = []
        self.kill_history: list[str] = []
        # name -> current slowdown factor for nodes degraded (not 1.0).
        self.degraded: dict[str, float] = {}

    def register(self, name: str, node: Failable) -> None:
        """Track ``node`` under ``name`` for later failure injection."""
        self._nodes[name] = node

    def node(self, name: str) -> Failable:
        """The registered node object for ``name``.

        Raises:
            KeyError: if no node with that name is registered.
        """
        return self._nodes[name]

    def kill(self, name: str) -> None:
        """Fail the named node.  Killing an already-dead node is a no-op.

        Raises:
            KeyError: if no node with that name is registered.
        """
        node = self._nodes[name]
        if not node.alive:
            return
        node.fail()
        self.killed.append(name)
        self.kill_history.append(name)
        _notify_fault("kill", {"node": name})

    def revive(self, name: str) -> None:
        """Bring a killed node back up and clear it from ``killed``.

        Uses the node's ``restart()`` method when it has one (machines
        model memory loss themselves); otherwise flips ``alive`` directly.
        Reviving a live node is a no-op.

        Raises:
            KeyError: if no node with that name is registered.
        """
        node = self._nodes[name]
        if node.alive:
            return
        restart = getattr(node, "restart", None)
        if callable(restart):
            restart()
        else:
            node.alive = True
        self.killed = [n for n in self.killed if n != name]

    def degrade(self, name: str, factor: float) -> None:
        """Put the named node's disk in degraded mode: every access costs
        ``factor`` times the healthy model.  ``factor=1.0`` restores full
        health.

        Raises:
            KeyError: if no node with that name is registered.
            TypeError: if the registered node has no ``disk``.
        """
        node = self._nodes[name]
        disk = getattr(node, "disk", None)
        if disk is None:
            raise TypeError(f"node {name!r} has no disk to degrade")
        disk.set_slowdown(factor)
        if factor == 1.0:
            self.degraded.pop(name, None)
        else:
            self.degraded[name] = factor
            _notify_fault("degrade", {"node": name, "factor": factor})

    def is_alive(self, name: str) -> bool:
        """Whether the named node is currently up."""
        return self._nodes[name].alive

    def alive_nodes(self) -> list[str]:
        """Names of registered nodes that are still alive."""
        return [name for name, node in self._nodes.items() if node.alive]


# ---------------------------------------------------------------------------
# Crash points and fault plans
# ---------------------------------------------------------------------------

# Canonical crash-point names.  Instrumented code imports these constants so
# schedules and call sites agree on spelling.
CP_LOG_APPEND = "log.append"            # ctx: machine, root
CP_TXN_PRE_COMMIT = "txn.pre_commit"    # before the commit record is durable
CP_TXN_POST_COMMIT = "txn.post_commit"  # durable but not yet applied
CP_CHECKPOINT_MID = "checkpoint.mid"    # between index files of a checkpoint
CP_COMPACTION_MID = "compaction.mid"    # after reduce, before install
CP_META_PERSIST = "log.meta_persist"    # slim metadata written to temp, not yet swapped
CP_DFS_APPEND = "dfs.append"            # ctx: block, writer — per pipeline run
CP_DFS_REREPLICATE = "dfs.rereplicate"  # ctx: block — per block re-replicated
CP_RECOVERY_MID = "recovery.mid"        # ctx: server, segment|tablet — mid redo
CP_SPLIT_PERSIST = "recovery.split_persist"  # split file on temp, not yet swapped
CP_ADOPT_MID = "recovery.adopt_mid"     # ctx: server, tablet — mid adoption replay
CP_MIGRATION_PREPARE = "migration.prepare"  # ctx: tablet, source, target — intent persisted
CP_MIGRATION_CATCHUP = "migration.catchup"  # ctx: tablet, source, target — mid catch-up
CP_MIGRATION_FLIP = "migration.flip"    # ctx: tablet, source, target, stage — fenced flip
CP_SPLIT_FLIP = "migration.split_flip"  # ctx: tablet, server — tablet split commit window


@dataclass
class FaultRule:
    """One entry in a fault schedule.

    The rule matches calls to :func:`crash_point` whose name equals
    ``point`` and whose context contains every ``match`` item; the
    ``action`` fires on the ``hits``-th matching call (once, unless
    ``repeat``).  Actions usually kill a node via a
    :class:`FailureInjector` and may raise to simulate the crash
    interrupting the instrumented operation.

    Attributes:
        point: crash-point name (one of the ``CP_*`` constants).
        action: callback receiving the hit's context dict.
        hits: fire on the Nth matching hit (1 = first).
        match: context items that must all be present for a hit to count.
        repeat: fire on every ``hits``-th hit instead of only once.
    """

    point: str
    action: Callable[[dict[str, Any]], None]
    hits: int = 1
    match: dict[str, Any] = field(default_factory=dict)
    repeat: bool = False
    seen: int = 0
    fired: int = 0

    def matches(self, ctx: dict[str, Any]) -> bool:
        return all(ctx.get(k) == v for k, v in self.match.items())


class FaultPlan:
    """A deterministic schedule of faults keyed by crash points."""

    def __init__(self) -> None:
        self.rules: list[FaultRule] = []
        # (point, ctx) of every action that fired, in order.
        self.fired: list[tuple[str, dict[str, Any]]] = []

    def add(
        self,
        point: str,
        action: Callable[[dict[str, Any]], None],
        *,
        hits: int = 1,
        repeat: bool = False,
        **match: Any,
    ) -> FaultRule:
        """Append a rule; keyword arguments are context matchers."""
        rule = FaultRule(point=point, action=action, hits=hits, match=match, repeat=repeat)
        self.rules.append(rule)
        return rule

    def hit(self, point: str, ctx: dict[str, Any]) -> None:
        """Record one crash-point hit and fire any due rules."""
        for rule in self.rules:
            if rule.point != point or not rule.matches(ctx):
                continue
            rule.seen += 1
            due = (
                rule.seen % rule.hits == 0
                if rule.repeat
                else (rule.seen == rule.hits and rule.fired == 0)
            )
            if due:
                rule.fired += 1
                self.fired.append((point, dict(ctx)))
                # Observed *before* the action runs: the flight recorder's
                # snapshot must show the cluster as the crash found it.
                _notify_fault(f"crash-point:{point}", dict(ctx))
                rule.action(ctx)


_ACTIVE_PLAN: FaultPlan | None = None


def crash_point(name: str, **ctx: Any) -> None:
    """Hook for instrumented code.  A no-op unless a plan is active."""
    if _ACTIVE_PLAN is not None:
        _ACTIVE_PLAN.hit(name, ctx)


@contextmanager
def fault_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of the ``with`` block."""
    global _ACTIVE_PLAN
    previous = _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    try:
        yield plan
    finally:
        _ACTIVE_PLAN = previous


def kill_action(
    injector: FailureInjector,
    name: str,
    raise_exc: Exception | None = None,
) -> Callable[[dict[str, Any]], None]:
    """Action factory: kill ``name`` via ``injector``; then raise
    ``raise_exc`` if given, so the crash interrupts the instrumented
    operation the way a real process death would."""

    def action(_ctx: dict[str, Any]) -> None:
        injector.kill(name)
        if raise_exc is not None:
            raise raise_exc

    return action


def limp_action(
    injector: FailureInjector, name: str, factor: float
) -> Callable[[dict[str, Any]], None]:
    """Action factory: put ``name``'s disk in degraded mode (gray failure).

    Unlike :func:`kill_action` nothing raises — a limping node keeps
    serving, just ``factor`` times slower, which is exactly why fail-stop
    detection cannot see it.  ``factor=1.0`` heals the node.
    """

    def action(_ctx: dict[str, Any]) -> None:
        injector.degrade(name, factor)

    return action


def link_limp_action(
    links: Any, a: str, b: str, factor: float
) -> Callable[[dict[str, Any]], None]:
    """Action factory: degrade the ``a``↔``b`` network link by ``factor``
    (see :class:`~repro.sim.network.LinkHealth`).  ``factor=1.0`` heals."""

    def action(_ctx: dict[str, Any]) -> None:
        links.slow(a, b, factor)

    return action
