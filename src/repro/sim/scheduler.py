"""Virtual-time scheduler multiplexing N logical clients over the
simulated cluster.

The seed workload drivers issue one operation at a time, so nothing ever
overlaps in simulated time and group commit would have nothing to batch.
This scheduler fixes that: each logical client is a Python generator
yielding *actions*; the scheduler owns each client's virtual timeline and
always steps the earliest-time runnable client next, so operations from
different clients genuinely interleave in simulated time.

Actions a client generator may yield:

- :class:`Invoke` — a synchronous operation.  ``fn(now)`` runs the op
  against the cluster and returns ``(result, seconds)``; the client's
  timeline advances by ``seconds`` and the generator receives the same
  ``(result, seconds)`` pair back.
- :class:`Submit` — an asynchronous group-commit submission.  ``fn(now)``
  returns a :class:`~repro.wal.group_commit.CommitFuture`; the client
  *parks* until the future's group flushes, then resumes at the future's
  completion time with the resolved future as the yield's value.
- :class:`Advance` — client-local think/transfer time.

Commit coordinators registered with the scheduler are polled between
client events: when the next coordinator deadline (an open group's seal
time, or a sealed group waiting for the replication pipeline) precedes
every runnable client, the due groups flush and their parked clients are
woken.  This is the event-driven core the ROADMAP's scale items need —
two clients' commit waits overlap instead of serializing.

Exceptions raised by an action's ``fn`` are re-thrown *inside* the
client's generator, so drivers handle cluster errors with an ordinary
``try/except`` around the ``yield``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable


@dataclass(frozen=True)
class Invoke:
    """Synchronous op: ``fn(now) -> (result, seconds)``."""

    fn: Callable[[float], tuple[Any, float]]


@dataclass(frozen=True)
class Submit:
    """Group-commit submission: ``fn(now) -> CommitFuture``; the client
    parks until the future resolves."""

    fn: Callable[[float], Any]


@dataclass(frozen=True)
class Advance:
    """Advance the client's own timeline by ``seconds``."""

    seconds: float


def measured(machine, fn: Callable[[float], Any]) -> Callable[[float], tuple[Any, float]]:
    """Wrap a cluster operation as an :class:`Invoke`-compatible fn.

    Scheduler steps execute serially in real time while machine clocks
    accumulate resource-time, so the virtual duration of one step is the
    machine-clock delta around it: ``fn(now)`` runs the operation against
    the cluster and ``measured`` returns ``(result, clock delta)``.  The
    fast-recovery workers use this to charge each redo slice to its
    worker's virtual timeline.
    """

    def invoke(now: float) -> tuple[Any, float]:
        start = machine.clock.now
        result = fn(now)
        return result, machine.clock.now - start

    return invoke


class _Raise:
    """Internal event payload: re-throw ``error`` inside the generator."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException) -> None:
        self.error = error


class _Client:
    __slots__ = ("gen", "now")

    def __init__(self, gen: Generator, now: float) -> None:
        self.gen = gen
        self.now = now


class ConcurrentScheduler:
    """Interleaves logical-client generators in virtual-time order.

    Args:
        coordinators: commit coordinators to poll between client events
            (more can be registered later with :meth:`add_coordinator` —
            e.g. when failover moves tablets to a server the run had not
            touched yet).
    """

    def __init__(self, coordinators: Iterable = ()) -> None:
        self._coordinators = list(coordinators)
        self._heap: list[tuple[float, int, _Client, Any]] = []
        self._seq = 0
        self._parked: dict[int, tuple[Any, _Client]] = {}
        self.makespan = 0.0
        self.finished = 0

    def add_coordinator(self, coordinator) -> None:
        """Register a commit coordinator for polling (idempotent)."""
        if coordinator is not None and coordinator not in self._coordinators:
            self._coordinators.append(coordinator)

    def add_client(self, gen: Generator, *, at: float = 0.0) -> None:
        """Add a logical client starting at virtual time ``at``."""
        self._push(_Client(gen, at), None)

    # -- event loop ----------------------------------------------------------------

    def run(self) -> float:
        """Run every client to completion; returns the makespan (latest
        virtual time any client finished at)."""
        while True:
            next_client = self._heap[0][0] if self._heap else None
            next_flush = None
            for coordinator in self._coordinators:
                due = coordinator.next_due()
                if due is not None and (next_flush is None or due < next_flush):
                    next_flush = due
            if next_client is None and next_flush is None:
                if self._parked:
                    # A parked client's future came from a coordinator
                    # this scheduler does not poll: nothing will ever
                    # resolve it.
                    raise RuntimeError(
                        f"{len(self._parked)} client(s) parked on commit futures "
                        "with no registered coordinator due"
                    )
                break
            if next_flush is not None and (
                next_client is None or next_flush <= next_client
            ):
                for coordinator in self._coordinators:
                    for future in coordinator.run_due(next_flush):
                        self._wake(future)
                continue
            _, _, client, payload = heapq.heappop(self._heap)
            self._step(client, payload)
        return self.makespan

    # -- internals -----------------------------------------------------------------

    def _push(self, client: _Client, payload: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (client.now, self._seq, client, payload))

    def _wake(self, future) -> None:
        entry = self._parked.pop(id(future), None)
        if entry is None:
            return  # resolved future nobody is parked on (direct submit)
        future, client = entry
        resume = future.completion_time
        if resume is not None and resume > client.now:
            client.now = resume
        self._push(client, future)

    def _step(self, client: _Client, payload: Any) -> None:
        try:
            if isinstance(payload, _Raise):
                action = client.gen.throw(payload.error)
            else:
                action = client.gen.send(payload)
        except StopIteration:
            self.finished += 1
            if client.now > self.makespan:
                self.makespan = client.now
            return
        if isinstance(action, Advance):
            if action.seconds < 0:
                self._push(client, _Raise(ValueError("Advance seconds must be >= 0")))
                return
            client.now += action.seconds
            self._push(client, None)
        elif isinstance(action, Invoke):
            try:
                result, seconds = action.fn(client.now)
            except BaseException as exc:  # rethrown inside the generator
                self._push(client, _Raise(exc))
                return
            client.now += seconds
            self._push(client, (result, seconds))
        elif isinstance(action, Submit):
            try:
                future = action.fn(client.now)
            except BaseException as exc:
                self._push(client, _Raise(exc))
                return
            if future.done:
                # Resolved synchronously (e.g. a drain beat us to it).
                if (
                    future.completion_time is not None
                    and future.completion_time > client.now
                ):
                    client.now = future.completion_time
                self._push(client, future)
            else:
                self._parked[id(future)] = (future, client)
        else:
            self._push(
                client,
                _Raise(TypeError(f"client yielded {action!r}, not a scheduler action")),
            )
