"""A simulated physical machine: one clock, one disk, one counter bag.

The paper's cluster co-locates an HDFS datanode and a tablet server on
every machine.  Both processes therefore share the machine's disk and its
timeline; modelling the machine as a single object with a shared
:class:`SimClock` and :class:`SimDisk` reproduces that contention (e.g. a
tablet server's log appends and its co-located datanode's replica writes
compete for the same disk head).
"""

from __future__ import annotations

from repro.errors import NetworkPartitionError
from repro.sim.clock import SimClock
from repro.sim.disk import DiskModel, SimDisk
from repro.sim.metrics import Counters
from repro.sim.network import NetworkModel


class Machine:
    """One simulated host in the cluster.

    Args:
        name: unique machine name, e.g. ``"node-3"``.
        rack: rack identifier used by rack-aware block placement.
        disk_model: per-disk cost parameters.
        network: cluster-wide network cost model (shared instance).
    """

    def __init__(
        self,
        name: str,
        rack: str = "rack-0",
        disk_model: DiskModel | None = None,
        network: NetworkModel | None = None,
    ) -> None:
        self.name = name
        self.rack = rack
        self.clock = SimClock()
        self.counters = Counters()
        self.disk = SimDisk(self.clock, disk_model, self.counters)
        self.network = network if network is not None else NetworkModel()
        self.alive = True

    def fail(self) -> None:
        """Crash the machine: all processes on it stop serving."""
        self.alive = False

    def restart(self) -> None:
        """Bring the machine back up (memory contents are lost by the
        processes, which model that themselves)."""
        self.alive = True

    def send(self, peer: "Machine", nbytes: int) -> float:
        """Charge this machine's clock for sending ``nbytes`` to ``peer``.

        Returns the seconds charged.  Same-machine transfers use loopback
        cost.

        Raises:
            NetworkPartitionError: if an active partition separates this
                machine from ``peer`` (no partition active by default).
        """
        if not self.network.reachable(self.name, peer.name):
            raise NetworkPartitionError(
                f"{self.name} cannot reach {peer.name}: network partitioned"
            )
        cost = self.network.transfer_cost(
            nbytes, local=peer is self, a=self.name, b=peer.name
        )
        self.clock.advance(cost)
        self.counters.add("net.bytes_sent", nbytes)
        self.counters.add("net.messages")
        return cost

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"Machine({self.name}, rack={self.rack}, {state})"
