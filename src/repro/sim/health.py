"""Health tracking for gray failures: EWMA latency, circuit breakers,
and admission control.

Gray failures — a disk that limps instead of dying, a link that crawls —
never trip liveness checks, so the fail-stop machinery (heartbeats,
failover) cannot see them.  What *can* see them is latency: every
component here maintains an exponentially weighted moving average of
observed service times and acts when it drifts past a threshold.

* :class:`CircuitBreaker` — classic closed → open → half-open automaton.
  Closed passes traffic and observes; when the EWMA exceeds the trip
  threshold (after a minimum sample count) it opens, and callers route
  around the node.  After a cooldown one probe is let through
  (half-open): a fast probe closes the breaker, a slow one re-opens it.
* :class:`HealthMonitor` — per-node breakers plus a global read-latency
  EWMA that sets the hedging delay (hedge when the preferred replica's
  estimated cost exceeds a multiple of the typical read).
* :class:`AdmissionController` — models a bounded in-flight queue on a
  tablet server.  In this simulation "queueing" is visible as the gap
  between the server's clock and the arriving client's clock: a server
  whose clock has raced ahead (slow disk, hedge losses) would make the
  caller wait that long.  When the backlog, measured in EWMA service
  times, exceeds the configured queue depth, the request is shed with a
  ``retry_after`` hint instead of being absorbed.

Everything here is pure bookkeeping over floats — no clocks are charged;
callers decide what to do with the verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServerOverloadedError
from repro.sim.metrics import ADMISSION_SHED, BREAKER_TRIPS, Counters


@dataclass(frozen=True)
class GrayPolicy:
    """Tuning knobs for the gray-failure resilience layer.

    Built by :meth:`repro.config.LogBaseConfig.gray_policy` when the
    ``gray_resilience`` gate is on; a ``None`` policy everywhere means
    the layer is disabled and no call site changes behaviour.

    Attributes:
        hedge_reads: fire a hedge to a second replica when the preferred
            replica's estimated read cost exceeds the hedge delay.
        hedge_quantile: hedge delay as a multiple of the EWMA read
            latency (approximating "hedge past the p9x quantile").
        hedge_min_delay: floor for the hedge delay in simulated seconds
            (also the delay used before any latency has been observed).
            The default sits above a healthy random disk access, so a
            cold monitor hedges only against gross outliers — an
            ordinary uncached read must never fire a wasted hedge.
        breaker_enabled: trip circuit breakers on slow nodes.
        breaker_trip_seconds: EWMA latency threshold that opens a breaker.
        breaker_cooldown: simulated seconds an open breaker waits before
            letting a half-open probe through.
        breaker_min_samples: observations required before a breaker may
            trip (one slow cold read should not open it).
        ewma_alpha: smoothing factor for every latency EWMA.
    """

    hedge_reads: bool = True
    hedge_quantile: float = 3.0
    hedge_min_delay: float = 0.05
    breaker_enabled: bool = True
    breaker_trip_seconds: float = 0.1
    breaker_cooldown: float = 2.0
    breaker_min_samples: int = 3
    ewma_alpha: float = 0.3


class LatencyEwma:
    """Exponentially weighted moving average of observed latencies."""

    __slots__ = ("alpha", "value", "samples")

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.value: float | None = None
        self.samples = 0

    def observe(self, latency: float) -> float:
        """Fold one observation in; returns the updated average."""
        if self.value is None:
            self.value = latency
        else:
            self.value = self.alpha * latency + (1.0 - self.alpha) * self.value
        self.samples += 1
        return self.value

    def reset(self, value: float | None = None) -> None:
        """Forget history (e.g. after a node heals)."""
        self.value = value
        self.samples = 0 if value is None else 1


class CircuitBreaker:
    """Closed / open / half-open breaker over one node's latency EWMA."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        trip_after: float,
        cooldown: float,
        min_samples: int = 3,
        alpha: float = 0.3,
    ) -> None:
        self.trip_after = trip_after
        self.cooldown = cooldown
        self.min_samples = min_samples
        self.ewma = LatencyEwma(alpha)
        self.state = self.CLOSED
        self.opened_at: float | None = None
        self.trips = 0

    def _open(self, now: float) -> None:
        self.state = self.OPEN
        self.opened_at = now
        self.trips += 1

    def observe(self, latency: float, now: float) -> bool:
        """Fold one observed latency in; returns True if this observation
        tripped the breaker (newly opened)."""
        self.ewma.observe(latency)
        if self.state == self.HALF_OPEN:
            if latency <= self.trip_after:
                # The probe came back fast: the node healed.  Forget the
                # limp-era history so the next trip needs fresh evidence.
                self.state = self.CLOSED
                self.ewma.reset(latency)
                return False
            self._open(now)
            return True
        if (
            self.state == self.CLOSED
            and self.ewma.samples >= self.min_samples
            and self.ewma.value is not None
            and self.ewma.value > self.trip_after
        ):
            self._open(now)
            return True
        return False

    def allow(self, now: float) -> bool:
        """Whether a request may be sent to this node right now.

        An open breaker whose cooldown has elapsed transitions to
        half-open and allows the probe through.
        """
        if self.state == self.CLOSED or self.state == self.HALF_OPEN:
            return True
        if self.opened_at is not None and now - self.opened_at >= self.cooldown:
            self.state = self.HALF_OPEN
            return True
        return False

    def remaining_cooldown(self, now: float) -> float:
        """Seconds until an open breaker will admit a probe (0 otherwise)."""
        if self.state != self.OPEN or self.opened_at is None:
            return 0.0
        return max(0.0, self.cooldown - (now - self.opened_at))


class HealthMonitor:
    """Per-node latency health shared by a DFS (or a client).

    Keeps one :class:`CircuitBreaker` per observed node plus a global
    read-latency EWMA that anchors the hedging delay.
    """

    def __init__(self, policy: GrayPolicy) -> None:
        self.policy = policy
        self.read_latency = LatencyEwma(policy.ewma_alpha)
        self._node_latency: dict[str, LatencyEwma] = {}
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker_states(self) -> dict[str, str]:
        """``{node name: breaker state}`` for every observed node (the
        monitoring scraper's circuit-breaker gauge source)."""
        return {name: b.state for name, b in sorted(self._breakers.items())}

    def breaker(self, name: str) -> CircuitBreaker:
        """The (lazily created) breaker guarding ``name``."""
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = CircuitBreaker(
                trip_after=self.policy.breaker_trip_seconds,
                cooldown=self.policy.breaker_cooldown,
                min_samples=self.policy.breaker_min_samples,
                alpha=self.policy.ewma_alpha,
            )
            self._breakers[name] = breaker
        return breaker

    def observe(
        self,
        name: str,
        latency: float,
        *,
        now: float,
        counters: Counters | None = None,
    ) -> None:
        """Record one served request's latency against ``name``."""
        self.read_latency.observe(latency)
        ewma = self._node_latency.get(name)
        if ewma is None:
            ewma = self._node_latency[name] = LatencyEwma(self.policy.ewma_alpha)
        ewma.observe(latency)
        if not self.policy.breaker_enabled:
            return
        if self.breaker(name).observe(latency, now) and counters is not None:
            counters.add(BREAKER_TRIPS)

    def allow(self, name: str, now: float) -> bool:
        """Whether routing may target ``name`` (breaker not open)."""
        if not self.policy.breaker_enabled:
            return True
        return self.breaker(name).allow(now)

    def state(self, name: str) -> str:
        """Breaker state for ``name`` (closed if never observed)."""
        breaker = self._breakers.get(name)
        return CircuitBreaker.CLOSED if breaker is None else breaker.state

    def hedge_delay(self) -> float:
        """Current hedging delay: a multiple of the *best* replica's
        typical latency, floored so a cold monitor still hedges against
        gross outliers.

        Anchoring on the fastest node rather than the global average
        matters under a gray failure: a limping replica's own slow
        observations raise only its own average, so it can never drag
        the delay above its latency and talk the monitor out of hedging
        around it.
        """
        values = [
            ewma.value
            for ewma in self._node_latency.values()
            if ewma.value is not None
        ]
        base = min(values, default=None)
        if base is None:
            return self.policy.hedge_min_delay
        return max(self.policy.hedge_min_delay, self.policy.hedge_quantile * base)


class AdmissionController:
    """Bounded in-flight queue model for one tablet server.

    The backlog is the gap between the server's clock and the arriving
    request's clock — exactly the time a synchronous caller would spend
    queued behind in-flight work.  Measured in EWMA service times, that
    gap is the queue depth; past ``max_queue`` the request is shed.
    """

    def __init__(
        self,
        max_queue: int,
        alpha: float = 0.3,
        default_service: float = 0.002,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.max_queue = max_queue
        self.default_service = default_service
        self.service = LatencyEwma(alpha)
        self.shed_count = 0
        # Newest queue depth seen by admit(); the monitoring scraper reads
        # it as the backlog gauge.  Pure bookkeeping, no simulated cost.
        self.last_depth = 0.0

    def _service_time(self) -> float:
        value = self.service.value
        return value if value else self.default_service

    def queue_depth(self, arrival_now: float, server_now: float) -> float:
        """Backlog in requests implied by the clock gap."""
        backlog = server_now - arrival_now
        if backlog <= 0:
            return 0.0
        return backlog / self._service_time()

    def admit(
        self,
        arrival_now: float,
        server_now: float,
        counters: Counters | None = None,
    ) -> None:
        """Admit or shed one arriving request.

        Raises:
            ServerOverloadedError: when the implied queue depth exceeds
                ``max_queue``.  ``retry_after`` is sized to drain the
                excess backlog, so one honored hint re-admits the caller.
        """
        depth = self.queue_depth(arrival_now, server_now)
        self.last_depth = depth
        if depth <= self.max_queue:
            return
        self.shed_count += 1
        if counters is not None:
            counters.add(ADMISSION_SHED)
        retry_after = (depth - self.max_queue) * self._service_time()
        raise ServerOverloadedError(
            f"queue depth {depth:.1f} exceeds {self.max_queue}",
            retry_after=retry_after,
        )

    def observe(self, service_seconds: float) -> None:
        """Record one completed request's server-side service time."""
        self.service.observe(service_seconds)
