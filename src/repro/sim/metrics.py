"""Lightweight named counters attached to simulated devices and servers."""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

# Canonical counter names for the log read pipeline.  Every component that
# records these imports the constants so dashboards (core.stats) and
# benchmarks agree on spelling.
BLOCK_CACHE_HITS = "blockcache.hits"
BLOCK_CACHE_MISSES = "blockcache.misses"
BLOCK_CACHE_EVICTIONS = "blockcache.evictions"
BLOCK_CACHE_FILL_BYTES = "blockcache.fill_bytes"
READ_MANY_CALLS = "log.read_many.calls"
READ_MANY_RECORDS = "log.read_many.records"
READ_MANY_SPANS = "log.read_many.spans"
SCAN_PREFETCH_WINDOWS = "log.scan.prefetch_windows"

# Canonical counter names for the fault-tolerance layer (PR 2).
DFS_UNDER_REPLICATED = "dfs.under_replicated"
DFS_REREPLICATIONS = "dfs.rereplications"
DFS_READ_FAILOVERS = "dfs.read_failovers"
DFS_CORRUPT_REPLICAS = "dfs.corrupt_replicas"
CLIENT_RETRIES = "client.retries"
CHAOS_FAULTS_FIRED = "chaos.faults_fired"

# Canonical counter names for the gray-failure resilience layer (PR 3).
DFS_HEDGE_FIRED = "dfs.hedge.fired"
DFS_HEDGE_WINS = "dfs.hedge.wins"
DFS_HEDGE_LOSSES = "dfs.hedge.losses"
BREAKER_TRIPS = "breaker.trips"
BREAKER_SKIPS = "breaker.skips"
DEADLINES_EXCEEDED = "deadline.exceeded"
ADMISSION_SHED = "admission.shed"
CLIENT_BREAKER_WAITS = "client.breaker.waits"

# Canonical counter names for the compaction subsystem (PR 4).  Rewrite
# amplification is derived by reports as
# ``compaction.bytes_written / log.ingest_bytes``.
COMPACTION_BYTES_READ = "compaction.bytes_read"
COMPACTION_BYTES_WRITTEN = "compaction.bytes_written"
COMPACTION_PLANS = "compaction.plans"
COMPACTION_TOMBSTONES_CARRIED = "compaction.tombstones_carried"
LOG_INGEST_BYTES = "log.ingest_bytes"


class Counters:
    """A bag of named integer/float counters.

    Examples of counters recorded by this library: ``disk.seeks``,
    ``disk.bytes_written``, ``net.rpcs``, ``cache.hits``, ``txn.aborts``,
    ``blockcache.hits``, ``log.read_many.spans``.
    """

    def __init__(self) -> None:
        self._values: dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._values[name] += amount

    def get(self, name: str) -> float:
        """Current value of ``name`` (0 if never incremented)."""
        return self._values.get(name, 0.0)

    def reset(self) -> None:
        """Zero every counter."""
        self._values.clear()

    def snapshot(self) -> dict[str, float]:
        """A copy of all counters, for reporting."""
        return dict(self._values)

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self._values.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in self)
        return f"Counters({inner})"
