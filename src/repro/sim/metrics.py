"""Lightweight named counters attached to simulated devices and servers,
plus the frozen registry of canonical metric names.

Every PR so far added a block of counter-name constants here; keeping the
spellings in one *frozen* registry (instead of four drifting blocks) lets
any component that mints a metric name — counters, histograms, span-latency
series — check it against the canonical set with
:func:`validate_metric_name`.  Device-level names (``disk.*``, ``net.*``,
``cache.*``, ``txn.*``) and per-span latency series are registered as
prefixes: their suffixes are data-dependent, but the namespace is fixed.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator


class MetricNameRegistry:
    """The canonical metric-name set: exact names plus allowed prefixes.

    Mutable only until :meth:`freeze` is called at the end of this module;
    registering afterwards raises, which is the point — a new metric name
    must be added here, next to every other name, or it does not validate.
    """

    def __init__(self) -> None:
        self._names: set[str] = set()
        self._prefixes: set[str] = set()
        self._frozen = False

    def register(self, name: str) -> str:
        """Add an exact canonical name; returns it for constant binding."""
        if self._frozen:
            raise RuntimeError("metric-name registry is frozen")
        self._names.add(name)
        return name

    def register_prefix(self, prefix: str) -> str:
        """Add a namespace whose suffixes are data-dependent."""
        if self._frozen:
            raise RuntimeError("metric-name registry is frozen")
        self._prefixes.add(prefix)
        return prefix

    def freeze(self) -> None:
        """Seal the registry against further registration."""
        self._frozen = True

    @property
    def frozen(self) -> bool:
        return self._frozen

    def known(self, name: str) -> bool:
        """Whether ``name`` is canonical (exact or under a prefix)."""
        if name in self._names:
            return True
        return any(name.startswith(prefix) for prefix in self._prefixes)

    def validate(self, name: str) -> str:
        """Return ``name`` if canonical, else raise ``ValueError``."""
        if not self.known(name):
            raise ValueError(
                f"unknown metric name {name!r}: register it in "
                f"repro.sim.metrics before use"
            )
        return name

    def names(self) -> frozenset[str]:
        """The exact names (prefixes excluded)."""
        return frozenset(self._names)


REGISTRY = MetricNameRegistry()

# Device/process namespaces whose members are minted by the simulators
# (e.g. ``disk.seeks``, ``net.bytes_sent``, ``cache.hits``, ``txn.aborts``).
DISK_PREFIX = REGISTRY.register_prefix("disk.")
NET_PREFIX = REGISTRY.register_prefix("net.")
CACHE_PREFIX = REGISTRY.register_prefix("cache.")
TXN_PREFIX = REGISTRY.register_prefix("txn.")

# Canonical counter names for the log read pipeline (PR 1).
BLOCK_CACHE_HITS = REGISTRY.register("blockcache.hits")
BLOCK_CACHE_MISSES = REGISTRY.register("blockcache.misses")
BLOCK_CACHE_EVICTIONS = REGISTRY.register("blockcache.evictions")
BLOCK_CACHE_FILL_BYTES = REGISTRY.register("blockcache.fill_bytes")
READ_MANY_CALLS = REGISTRY.register("log.read_many.calls")
READ_MANY_RECORDS = REGISTRY.register("log.read_many.records")
READ_MANY_SPANS = REGISTRY.register("log.read_many.spans")
SCAN_PREFETCH_WINDOWS = REGISTRY.register("log.scan.prefetch_windows")

# Canonical counter names for the fault-tolerance layer (PR 2).
DFS_UNDER_REPLICATED = REGISTRY.register("dfs.under_replicated")
DFS_REREPLICATIONS = REGISTRY.register("dfs.rereplications")
DFS_READ_FAILOVERS = REGISTRY.register("dfs.read_failovers")
DFS_CORRUPT_REPLICAS = REGISTRY.register("dfs.corrupt_replicas")
CLIENT_RETRIES = REGISTRY.register("client.retries")
CHAOS_FAULTS_FIRED = REGISTRY.register("chaos.faults_fired")

# Canonical counter names for the gray-failure resilience layer (PR 3).
DFS_HEDGE_FIRED = REGISTRY.register("dfs.hedge.fired")
DFS_HEDGE_WINS = REGISTRY.register("dfs.hedge.wins")
DFS_HEDGE_LOSSES = REGISTRY.register("dfs.hedge.losses")
BREAKER_TRIPS = REGISTRY.register("breaker.trips")
BREAKER_SKIPS = REGISTRY.register("breaker.skips")
DEADLINES_EXCEEDED = REGISTRY.register("deadline.exceeded")
ADMISSION_SHED = REGISTRY.register("admission.shed")
CLIENT_BREAKER_WAITS = REGISTRY.register("client.breaker.waits")

# Canonical counter names for the compaction subsystem (PR 4).  Rewrite
# amplification is derived by reports as
# ``compaction.bytes_written / log.ingest_bytes``.
COMPACTION_BYTES_READ = REGISTRY.register("compaction.bytes_read")
COMPACTION_BYTES_WRITTEN = REGISTRY.register("compaction.bytes_written")
COMPACTION_PLANS = REGISTRY.register("compaction.plans")
COMPACTION_TOMBSTONES_CARRIED = REGISTRY.register("compaction.tombstones_carried")
LOG_INGEST_BYTES = REGISTRY.register("log.ingest_bytes")

# Canonical span names for the observability subsystem (PR 5).  The
# tracer anchors each span to one machine's clock; see repro.obs.trace.
SPAN_OP_PREFIX = REGISTRY.register_prefix("op.")  # client root ops: op.put, ...
SPAN_RPC_SERVER = REGISTRY.register("rpc.server")
SPAN_CLIENT_BREAKER_WAIT = REGISTRY.register("client.breaker_wait")
SPAN_CLIENT_RETRY = REGISTRY.register("client.retry")
SPAN_TS_WRITE = REGISTRY.register("ts.write")
SPAN_TS_WRITE_BATCH = REGISTRY.register("ts.write_batch")
SPAN_TS_READ = REGISTRY.register("ts.read")
SPAN_TS_DELETE = REGISTRY.register("ts.delete")
SPAN_TS_APPEND_TXN = REGISTRY.register("ts.append_txn")
SPAN_TXN_COMMIT = REGISTRY.register("txn.commit")
SPAN_LOG_APPEND = REGISTRY.register("log.append")
SPAN_LOG_READ = REGISTRY.register("log.read")
SPAN_LOG_READ_MANY = REGISTRY.register("log.read_many")
SPAN_DFS_APPEND = REGISTRY.register("dfs.append")
SPAN_DFS_READ = REGISTRY.register("dfs.read")
SPAN_DFS_HEDGE_WINNER = REGISTRY.register("dfs.hedge.winner")
SPAN_DFS_HEDGE_LOSER = REGISTRY.register("dfs.hedge.loser")
SPAN_COMPACTION_ROUND = REGISTRY.register("compaction.round")
SPAN_COMPACTION_PLAN = REGISTRY.register("compaction.plan")
SPAN_RECOVERY_RECOVER = REGISTRY.register("recovery.recover")
SPAN_RECOVERY_REDO = REGISTRY.register("recovery.redo")
SPAN_RECOVERY_ADOPT = REGISTRY.register("recovery.adopt")

# Canonical histogram names (PR 5).  The tracer records one latency
# series per root-span name under the ``latency.`` namespace.
HIST_SPAN_LATENCY_PREFIX = REGISTRY.register_prefix("latency.")
HIST_CHAOS_READ_LATENCY = REGISTRY.register("latency.chaos.read")

# Canonical names for concurrent clients + group commit (PR 7).
# ``commit.groups`` counts flushed groups, ``commit.group_fanin`` sums the
# member submissions across them (mean fan-in = fanin / groups), and
# ``commit.acks_deferred`` counts members whose replication ack drained
# while the next group's data was already streaming (the pipeline
# overlap).  ``dfs.append_round_trips`` counts synchronous replication
# pipelines run by the DFS — the quantity group commit collapses from one
# per record to ~one per group.
COMMIT_GROUPS = REGISTRY.register("commit.groups")
COMMIT_GROUP_FANIN = REGISTRY.register("commit.group_fanin")
COMMIT_ACKS_DEFERRED = REGISTRY.register("commit.acks_deferred")
DFS_APPEND_ROUND_TRIPS = REGISTRY.register("dfs.append_round_trips")
SPAN_COMMIT_FLUSH = REGISTRY.register("commit.flush")
HIST_COMMIT_LATENCY = REGISTRY.register("latency.commit")
HIST_COMMIT_FANIN = REGISTRY.register("commit.fanin")

# Canonical names for fast parallel recovery (PR 8).
# ``recovery.parallel_runs`` counts parallel recovery passes,
# ``recovery.tablets_recovered`` counts tablets flipped back to serving,
# ``recovery.rejected_ops`` counts client ops bounced off still-recovering
# tablets with TabletRecoveringError, ``recovery.splits_persisted`` counts
# atomically-installed split files, and ``recovery.adopt_skipped`` counts
# re-homed records an idempotent re-adoption found already applied.
RECOVERY_PARALLEL_RUNS = REGISTRY.register("recovery.parallel_runs")
RECOVERY_TABLETS_RECOVERED = REGISTRY.register("recovery.tablets_recovered")
RECOVERY_WRITES_APPLIED = REGISTRY.register("recovery.writes_applied")
RECOVERY_DELETES_APPLIED = REGISTRY.register("recovery.deletes_applied")
RECOVERY_REJECTED_OPS = REGISTRY.register("recovery.rejected_ops")
RECOVERY_SPLITS_PERSISTED = REGISTRY.register("recovery.splits_persisted")
RECOVERY_ADOPT_SKIPPED = REGISTRY.register("recovery.adopt_skipped")
SPAN_RECOVERY_TABLET = REGISTRY.register("recovery.tablet_redo")
HIST_RECOVERY_TABLET_SECONDS = REGISTRY.register("latency.recovery.tablet")

# Canonical names for live tablet migration (PR 9).
# ``migration.started/completed/aborted`` count state-machine outcomes,
# ``migration.records_caught_up`` counts records the target replayed from
# the source's shared-DFS log (catch-up plus flip delta),
# ``migration.flip_seconds`` accumulates the fenced-flip windows (the only
# unavailability a migration causes; per-flip distribution is the
# ``latency.migration.flip`` histogram), ``migration.splits`` counts
# hot-tablet splits, ``migration.balancer_moves`` counts actions the load
# balancer initiated, and ``migration.lease_rejects`` counts ops bounced
# off a server whose ownership lease had lapsed (the split-brain guard).
MIGRATION_STARTED = REGISTRY.register("migration.started")
MIGRATION_COMPLETED = REGISTRY.register("migration.completed")
MIGRATION_ABORTED = REGISTRY.register("migration.aborted")
MIGRATION_RECORDS_CAUGHT_UP = REGISTRY.register("migration.records_caught_up")
MIGRATION_FLIP_SECONDS = REGISTRY.register("migration.flip_seconds")
MIGRATION_SPLITS = REGISTRY.register("migration.splits")
MIGRATION_BALANCER_MOVES = REGISTRY.register("migration.balancer_moves")
MIGRATION_LEASE_REJECTS = REGISTRY.register("migration.lease_rejects")
SPAN_MIGRATION_MIGRATE = REGISTRY.register("migration.migrate")
SPAN_MIGRATION_CATCHUP_PHASE = REGISTRY.register("migration.catchup_phase")
SPAN_MIGRATION_FLIP_PHASE = REGISTRY.register("migration.flip_phase")
HIST_MIGRATION_FLIP = REGISTRY.register("latency.migration.flip")

# Canonical names for log-shipping read replicas (PR 10).
# ``replica.reads_served`` counts reads a follower answered,
# ``replica.redirects`` counts reads bounced back to the owner
# (FollowerLaggingError: watermark too stale, unsubscribed, or the
# needed segment was retired by compaction), ``replica.lag_records``
# accumulates records applied by follower tails (the shipped volume),
# ``replica.tail_batches`` counts tail passes that applied at least one
# record, and ``latency.replica.lag`` is the per-heartbeat distribution
# of follower staleness in simulated seconds (owner last-commit time
# minus follower watermark).
REPLICA_READS_SERVED = REGISTRY.register("replica.reads_served")
REPLICA_REDIRECTS = REGISTRY.register("replica.redirects")
REPLICA_LAG_RECORDS = REGISTRY.register("replica.lag_records")
REPLICA_TAIL_BATCHES = REGISTRY.register("replica.tail_batches")
SPAN_FOLLOWER_TAIL = REGISTRY.register("follower.tail")
SPAN_FOLLOWER_READ = REGISTRY.register("follower.read")
HIST_REPLICA_LAG = REGISTRY.register("latency.replica.lag")

# Canonical names for the cluster monitoring plane (PR 11).  Gauges are
# point-in-time health readings sampled by the scraper on every cluster
# heartbeat; they share one schema with the stats report (see
# ``repro.obs.monitor.collect_health_gauges``) so the two can never
# disagree.  ``slo.`` series carry cumulative good/bad op counts per SLO
# objective, from which the alert engine computes burn rates.
GAUGE_SERVER_UP = REGISTRY.register("gauge.server_up")
GAUGE_RECOVERY_QUEUE = REGISTRY.register("gauge.recovery_queue")
GAUGE_LEASE_HEALTH = REGISTRY.register("gauge.lease_health")
GAUGE_ADMISSION_BACKLOG = REGISTRY.register("gauge.admission_backlog")
GAUGE_BREAKER_OPEN = REGISTRY.register("gauge.breaker_open")
GAUGE_BLOCKCACHE_HIT_RATE = REGISTRY.register("gauge.blockcache_hit_rate")
GAUGE_COMPACTION_DEBT = REGISTRY.register("gauge.compaction_debt_bytes")
GAUGE_REPLICA_LAG = REGISTRY.register("gauge.replica_lag")
GAUGE_TABLET_HEAT = REGISTRY.register("gauge.tablet_heat")
SLO_PREFIX = REGISTRY.register_prefix("slo.")

REGISTRY.freeze()


def validate_metric_name(name: str) -> str:
    """Module-level helper over the frozen registry (see
    :meth:`MetricNameRegistry.validate`)."""
    return REGISTRY.validate(name)


class Counters:
    """A bag of named integer/float counters.

    Examples of counters recorded by this library: ``disk.seeks``,
    ``disk.bytes_written``, ``net.rpcs``, ``cache.hits``, ``txn.aborts``,
    ``blockcache.hits``, ``log.read_many.spans``.
    """

    def __init__(self) -> None:
        self._values: dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._values[name] += amount

    def get(self, name: str) -> float:
        """Current value of ``name`` (0 if never incremented)."""
        return self._values.get(name, 0.0)

    def merge(self, other: "Counters | dict[str, float]") -> "Counters":
        """Add every counter in ``other`` into this bag; returns self.

        Cluster-wide aggregation sums one bag per machine — this replaces
        the manual dict-summing loops call sites used to carry.
        """
        items = other._values.items() if isinstance(other, Counters) else other.items()
        for name, value in items:
            self._values[name] += value
        return self

    def reset(self) -> None:
        """Zero every counter."""
        self._values.clear()

    def snapshot(self) -> dict[str, float]:
        """A copy of all counters, for reporting."""
        return dict(self._values)

    def delta_since(self, snapshot: dict[str, float]) -> dict[str, float]:
        """Per-counter change since an earlier :meth:`snapshot`.

        Returns only counters that moved (nonzero delta).  Counters are
        monotonic in practice, but a :meth:`reset` between snapshots can
        produce negative deltas; they are reported as-is so callers can
        notice the reset instead of silently reading garbage.
        """
        delta: dict[str, float] = {}
        for name, value in self._values.items():
            change = value - snapshot.get(name, 0.0)
            if change != 0.0:
                delta[name] = change
        for name, value in snapshot.items():
            if name not in self._values and value != 0.0:
                delta[name] = -value
        return delta

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self._values.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in self)
        return f"Counters({inner})"
